#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sched/compile_cache.h"
#include "sched/executor.h"
#include "sched/scheduler.h"
#include "sched/workload_driver.h"

namespace dana::sched {
namespace {

// ---------------------------------------------------------------------------
// Latency-percentile math (common/stats.h Percentile)
// ---------------------------------------------------------------------------

TEST(PercentileTest, LinearInterpolationBetweenRanks) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 100.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 50.5);
  EXPECT_NEAR(Percentile(v, 95), 95.05, 1e-9);
  EXPECT_NEAR(Percentile(v, 99), 99.01, 1e-9);
}

TEST(PercentileTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 99), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0}, 50), 2.0);  // input need not be sorted
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0}, 150), 2.0);  // p clamped
}

// ---------------------------------------------------------------------------
// Workload driver
// ---------------------------------------------------------------------------

std::vector<std::string> SixClassCatalog() {
  return {"a", "b", "c", "d", "e", "f"};
}

TEST(WorkloadDriverTest, BitReproducibleFromSeed) {
  DriverOptions opts;
  opts.seed = 1234;
  opts.num_queries = 300;
  opts.arrival_rate_qps = 10;
  WorkloadDriver d1(SixClassCatalog(), opts);
  WorkloadDriver d2(SixClassCatalog(), opts);
  auto s1 = d1.Generate();
  auto s2 = d2.Generate();
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  ASSERT_EQ(s1->size(), 300u);
  for (size_t i = 0; i < s1->size(); ++i) {
    EXPECT_EQ((*s1)[i].id, (*s2)[i].id);
    EXPECT_EQ((*s1)[i].workload_id, (*s2)[i].workload_id);
    // Bit-for-bit, not approximately equal.
    EXPECT_EQ((*s1)[i].arrival.nanos(), (*s2)[i].arrival.nanos());
  }
}

TEST(WorkloadDriverTest, DifferentSeedsDiffer) {
  DriverOptions opts;
  opts.num_queries = 50;
  opts.seed = 1;
  WorkloadDriver d1(SixClassCatalog(), opts);
  opts.seed = 2;
  WorkloadDriver d2(SixClassCatalog(), opts);
  auto s1 = d1.Generate();
  auto s2 = d2.Generate();
  ASSERT_TRUE(s1.ok() && s2.ok());
  bool any_difference = false;
  for (size_t i = 0; i < s1->size(); ++i) {
    if ((*s1)[i].workload_id != (*s2)[i].workload_id ||
        (*s1)[i].arrival.nanos() != (*s2)[i].arrival.nanos()) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(WorkloadDriverTest, ArrivalsAreMonotonicAndRateMatches) {
  DriverOptions opts;
  opts.num_queries = 2000;
  opts.arrival_rate_qps = 20;
  WorkloadDriver driver(SixClassCatalog(), opts);
  auto stream = driver.Generate();
  ASSERT_TRUE(stream.ok());
  dana::SimTime prev;
  for (const QueryRequest& r : *stream) {
    EXPECT_GE(r.arrival.nanos(), prev.nanos());
    prev = r.arrival;
  }
  // 2000 arrivals at 20 qps last ~100 s in expectation.
  EXPECT_NEAR(stream->back().arrival.seconds(), 100.0, 15.0);
}

TEST(WorkloadDriverTest, ZipfianSkewsTowardsHeadOfCatalog) {
  DriverOptions opts;
  opts.num_queries = 1000;
  opts.popularity = Popularity::kZipfian;
  opts.zipf_exponent = 1.2;
  WorkloadDriver driver(SixClassCatalog(), opts);
  auto stream = driver.Generate();
  ASSERT_TRUE(stream.ok());
  std::map<std::string, int> counts;
  for (const QueryRequest& r : *stream) counts[r.workload_id]++;
  // Rank 0 should dominate the tail decisively at s=1.2.
  EXPECT_GT(counts["a"], 2 * counts["f"]);
  EXPECT_GT(counts["a"], counts["b"]);
}

TEST(WorkloadDriverTest, UniformIsRoughlyBalanced) {
  DriverOptions opts;
  opts.num_queries = 6000;
  opts.popularity = Popularity::kUniform;
  WorkloadDriver driver(SixClassCatalog(), opts);
  auto stream = driver.Generate();
  ASSERT_TRUE(stream.ok());
  std::map<std::string, int> counts;
  for (const QueryRequest& r : *stream) counts[r.workload_id]++;
  for (const auto& [id, n] : counts) {
    EXPECT_NEAR(n, 1000, 150) << id;
  }
}

TEST(WorkloadDriverTest, RejectsBadConfigurations) {
  DriverOptions opts;
  EXPECT_TRUE(WorkloadDriver({}, opts).Generate().status().IsInvalidArgument());
  opts.arrival_rate_qps = 0;
  EXPECT_TRUE(WorkloadDriver(SixClassCatalog(), opts)
                  .Generate()
                  .status()
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Compile cache
// ---------------------------------------------------------------------------

TEST(CompileCacheTest, BuildsOncePerKey) {
  CompileCache cache;
  int builds = 0;
  auto builder = [&]() -> Result<compiler::CompiledUdf> {
    ++builds;
    compiler::CompiledUdf udf;
    udf.udf_name = "stub";
    return udf;
  };
  auto first = cache.GetOrCompile("linear_d10", builder);
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrCompile("linear_d10", builder);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(*first, *second);  // same stored object
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Find("linear_d10"), *first);
  EXPECT_EQ(cache.Find("absent"), nullptr);
}

TEST(CompileCacheTest, FailedBuildIsNotCached) {
  CompileCache cache;
  int calls = 0;
  auto builder = [&]() -> Result<compiler::CompiledUdf> {
    if (++calls == 1) return Status::Internal("transient");
    compiler::CompiledUdf udf;
    return udf;
  };
  EXPECT_FALSE(cache.GetOrCompile("k", builder).ok());
  EXPECT_TRUE(cache.GetOrCompile("k", builder).ok());
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
}

// ---------------------------------------------------------------------------
// Scheduler policies (driven by a synthetic executor)
// ---------------------------------------------------------------------------

class FakeExecutor : public QueryExecutor {
 public:
  void Set(const std::string& id, double service_s, double estimate_s,
           double compile_s = 0.0) {
    costs_[id] = {dana::SimTime::Seconds(service_s),
                  dana::SimTime::Seconds(compile_s)};
    estimates_[id] = dana::SimTime::Seconds(estimate_s);
  }

  Result<QueryCost> Cost(const std::string& id) override {
    auto it = costs_.find(id);
    if (it == costs_.end()) return Status::NotFound(id);
    ++cost_calls_;
    return it->second;
  }

  Result<dana::SimTime> Estimate(const std::string& id) override {
    auto it = estimates_.find(id);
    if (it == estimates_.end()) return Status::NotFound(id);
    return it->second;
  }

  int cost_calls() const { return cost_calls_; }

 private:
  std::map<std::string, QueryCost> costs_;
  std::map<std::string, dana::SimTime> estimates_;
  int cost_calls_ = 0;
};

QueryRequest Req(uint64_t id, const std::string& workload, double arrival_s) {
  QueryRequest r;
  r.id = id;
  r.workload_id = workload;
  r.arrival = dana::SimTime::Seconds(arrival_s);
  return r;
}

std::vector<uint64_t> DispatchOrder(const ScheduleReport& report) {
  std::vector<uint64_t> order;
  for (const QueryStat& q : report.queries) order.push_back(q.id);
  return order;
}

TEST(SchedulerTest, FcfsDispatchesInArrivalOrder) {
  FakeExecutor exec;
  exec.Set("long", 100, 100);
  exec.Set("short", 1, 1);
  // All queued behind the long job on one slot.
  std::vector<QueryRequest> reqs = {Req(0, "long", 0), Req(1, "long", 1),
                                    Req(2, "short", 2), Req(3, "long", 3)};
  Scheduler sched({.slots = 1, .policy = Policy::kFcfs}, &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(DispatchOrder(*report), (std::vector<uint64_t>{0, 1, 2, 3}));
}

TEST(SchedulerTest, SjfPicksSmallestEstimateAmongQueued) {
  FakeExecutor exec;
  exec.Set("huge", 100, 100);
  exec.Set("mid", 30, 30);
  exec.Set("small", 10, 10);
  exec.Set("tiny", 5, 5);
  // "huge" occupies the slot; the rest queue up and must run in estimate
  // order, not arrival order.
  std::vector<QueryRequest> reqs = {Req(0, "huge", 0), Req(1, "mid", 1),
                                    Req(2, "small", 2), Req(3, "tiny", 3)};
  Scheduler sched({.slots = 1, .policy = Policy::kSjf}, &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(DispatchOrder(*report), (std::vector<uint64_t>{0, 3, 2, 1}));
}

TEST(SchedulerTest, RoundRobinAlternatesAcrossAlgorithms) {
  FakeExecutor exec;
  exec.Set("x", 10, 10);
  exec.Set("y", 10, 10);
  // Three x queries then one y, all arriving while the slot is busy: RR
  // must interleave y after the first x instead of draining x first.
  std::vector<QueryRequest> reqs = {Req(0, "x", 0), Req(1, "x", 1),
                                    Req(2, "x", 2), Req(3, "y", 3)};
  Scheduler sched({.slots = 1, .policy = Policy::kRoundRobin}, &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(DispatchOrder(*report), (std::vector<uint64_t>{0, 3, 1, 2}));
}

TEST(SchedulerTest, CompileChargedOnlyOnFirstDispatchOfEachAlgorithm) {
  FakeExecutor exec;
  exec.Set("a", 10, 10, /*compile_s=*/5);
  exec.Set("b", 10, 10, /*compile_s=*/5);
  std::vector<QueryRequest> reqs = {Req(0, "a", 0), Req(1, "a", 0),
                                    Req(2, "b", 0), Req(3, "a", 0)};
  Scheduler sched({.slots = 1, .policy = Policy::kFcfs}, &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->compile_misses, 2u);  // first "a", first "b"
  EXPECT_EQ(report->compile_hits, 2u);
  EXPECT_FALSE(report->queries[0].compile_hit);
  EXPECT_DOUBLE_EQ(report->queries[0].compile.seconds(), 5.0);
  EXPECT_TRUE(report->queries[1].compile_hit);
  EXPECT_DOUBLE_EQ(report->queries[1].compile.seconds(), 0.0);
  EXPECT_FALSE(report->queries[2].compile_hit);
  EXPECT_TRUE(report->queries[3].compile_hit);
  // Slot occupancy: 15 + 10 + 15 + 10 back to back.
  EXPECT_DOUBLE_EQ(report->makespan.seconds(), 50.0);
}

TEST(SchedulerTest, ConcurrentDispatchWaitsForInFlightCompile) {
  FakeExecutor exec;
  exec.Set("a", 10, 10, /*compile_s=*/5);
  // Both queries arrive at t=0 on 2 slots: the second is a cache hit but
  // must wait out the first's in-flight compile instead of starting a
  // training run with a design that does not exist until t=5.
  std::vector<QueryRequest> reqs = {Req(0, "a", 0), Req(1, "a", 0)};
  Scheduler sched({.slots = 2, .policy = Policy::kFcfs}, &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->queries[0].compile_hit);
  EXPECT_DOUBLE_EQ(report->queries[0].completion.seconds(), 15.0);
  EXPECT_TRUE(report->queries[1].compile_hit);
  EXPECT_DOUBLE_EQ(report->queries[1].compile.seconds(), 5.0);  // residual
  EXPECT_DOUBLE_EQ(report->queries[1].completion.seconds(), 15.0);
  // A third query dispatched after the compile finished pays nothing.
  reqs.push_back(Req(2, "a", 20));
  auto later = Scheduler({.slots = 2, .policy = Policy::kFcfs}, &exec)
                   .Run(reqs);
  ASSERT_TRUE(later.ok());
  EXPECT_TRUE(later->queries[2].compile_hit);
  EXPECT_DOUBLE_EQ(later->queries[2].compile.seconds(), 0.0);
}

TEST(SchedulerTest, SlotsNeverOverlapAndStartAfterArrival) {
  FakeExecutor exec;
  exec.Set("a", 7, 7);
  exec.Set("b", 3, 3);
  std::vector<QueryRequest> reqs;
  for (int i = 0; i < 40; ++i) {
    reqs.push_back(Req(static_cast<uint64_t>(i), i % 3 ? "a" : "b", 0.5 * i));
  }
  for (Policy policy : {Policy::kFcfs, Policy::kSjf, Policy::kRoundRobin}) {
    Scheduler sched({.slots = 3, .policy = policy}, &exec);
    auto report = sched.Run(reqs);
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report->queries.size(), reqs.size());
    std::map<uint32_t, dana::SimTime> slot_busy_until;
    dana::SimTime max_completion;
    for (const QueryStat& q : report->queries) {
      EXPECT_GE(q.start.nanos(), q.arrival.nanos());
      EXPECT_GE(q.slot, 0u);
      EXPECT_LT(q.slot, 3u);
      // Dispatch order visits each slot in nondecreasing free time, so a
      // query must start at or after its slot's previous completion.
      EXPECT_GE(q.start.nanos(), slot_busy_until[q.slot].nanos());
      slot_busy_until[q.slot] = q.completion;
      max_completion = dana::SimTime::Max(max_completion, q.completion);
      EXPECT_DOUBLE_EQ(q.completion.nanos(),
                       (q.start + q.compile + q.service).nanos());
    }
    EXPECT_DOUBLE_EQ(report->makespan.nanos(), max_completion.nanos());
    EXPECT_GT(report->ThroughputQps(), 0.0);
  }
}

TEST(SchedulerTest, MoreSlotsFinishNoLater) {
  FakeExecutor exec;
  exec.Set("a", 10, 10);
  std::vector<QueryRequest> reqs;
  for (int i = 0; i < 16; ++i) reqs.push_back(Req(i, "a", 0));
  Scheduler one({.slots = 1, .policy = Policy::kFcfs}, &exec);
  Scheduler four({.slots = 4, .policy = Policy::kFcfs}, &exec);
  auto r1 = one.Run(reqs);
  auto r4 = four.Run(reqs);
  ASSERT_TRUE(r1.ok() && r4.ok());
  EXPECT_DOUBLE_EQ(r1->makespan.seconds(), 160.0);
  EXPECT_DOUBLE_EQ(r4->makespan.seconds(), 40.0);
}

TEST(SchedulerTest, SjfBeatsFcfsOnMeanLatencyForSkewedMix) {
  // A Zipfian mix over classes whose service times span 100x: the long jobs
  // head-of-line-block FCFS while SJF lets the swarm of short queries
  // through first.
  FakeExecutor exec;
  exec.Set("hot_short", 2, 2);
  exec.Set("warm_mid", 20, 20);
  exec.Set("cold_long", 200, 200);
  DriverOptions opts;
  opts.num_queries = 120;
  opts.arrival_rate_qps = 0.12;  // keeps one slot saturated
  opts.zipf_exponent = 1.0;
  WorkloadDriver driver({"hot_short", "warm_mid", "cold_long"}, opts);
  auto stream = driver.Generate();
  ASSERT_TRUE(stream.ok());

  Scheduler fcfs({.slots = 1, .policy = Policy::kFcfs}, &exec);
  Scheduler sjf({.slots = 1, .policy = Policy::kSjf}, &exec);
  auto r_fcfs = fcfs.Run(*stream);
  auto r_sjf = sjf.Run(*stream);
  ASSERT_TRUE(r_fcfs.ok() && r_sjf.ok());
  EXPECT_LT(r_sjf->MeanLatency().seconds(), r_fcfs->MeanLatency().seconds());
}

TEST(SchedulerTest, PolicyNamesRoundTrip) {
  for (Policy p : {Policy::kFcfs, Policy::kSjf, Policy::kRoundRobin}) {
    auto parsed = ParsePolicy(PolicyName(p));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_TRUE(ParsePolicy("lifo").status().IsInvalidArgument());
  EXPECT_TRUE(ParsePopularity("pareto").status().IsInvalidArgument());
}

}  // namespace
}  // namespace dana::sched
