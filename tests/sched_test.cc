#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "sched/compile_cache.h"
#include "sched/executor.h"
#include "sched/scheduler.h"
#include "sched/workload_driver.h"

namespace dana::sched {
namespace {

// ---------------------------------------------------------------------------
// Latency-percentile math (common/stats.h Percentile)
// ---------------------------------------------------------------------------

TEST(PercentileTest, LinearInterpolationBetweenRanks) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 100.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 50.5);
  EXPECT_NEAR(Percentile(v, 95), 95.05, 1e-9);
  EXPECT_NEAR(Percentile(v, 99), 99.01, 1e-9);
}

TEST(PercentileTest, EdgeCases) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(Percentile({}, 50)));  // no data != zero latency
  EXPECT_TRUE(std::isnan(Percentile({nan, nan}, 50)));
  EXPECT_TRUE(std::isnan(Percentile({1.0, 2.0}, nan)));
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0), 7.0);  // single element, every p
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 50), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 99), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0}, 50), 2.0);  // input need not be sorted
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0}, 150), 2.0);  // p clamped
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0}, -5), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({nan, 3.0, 1.0}, 100), 3.0);  // NaN samples drop
  // p=0 / p=100 hit the exact extremes with no interpolation round-off.
  EXPECT_DOUBLE_EQ(Percentile({0.1, 0.2, 0.3}, 0), 0.1);
  EXPECT_DOUBLE_EQ(Percentile({0.1, 0.2, 0.3}, 100), 0.3);
}

// ---------------------------------------------------------------------------
// Workload driver
// ---------------------------------------------------------------------------

std::vector<std::string> SixClassCatalog() {
  return {"a", "b", "c", "d", "e", "f"};
}

TEST(WorkloadDriverTest, BitReproducibleFromSeed) {
  DriverOptions opts;
  opts.seed = 1234;
  opts.num_queries = 300;
  opts.arrival_rate_qps = 10;
  WorkloadDriver d1(SixClassCatalog(), opts);
  WorkloadDriver d2(SixClassCatalog(), opts);
  auto s1 = d1.Generate();
  auto s2 = d2.Generate();
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  ASSERT_EQ(s1->size(), 300u);
  for (size_t i = 0; i < s1->size(); ++i) {
    EXPECT_EQ((*s1)[i].id, (*s2)[i].id);
    EXPECT_EQ((*s1)[i].workload_id, (*s2)[i].workload_id);
    // Bit-for-bit, not approximately equal.
    EXPECT_EQ((*s1)[i].arrival.nanos(), (*s2)[i].arrival.nanos());
  }
}

TEST(WorkloadDriverTest, DifferentSeedsDiffer) {
  DriverOptions opts;
  opts.num_queries = 50;
  opts.seed = 1;
  WorkloadDriver d1(SixClassCatalog(), opts);
  opts.seed = 2;
  WorkloadDriver d2(SixClassCatalog(), opts);
  auto s1 = d1.Generate();
  auto s2 = d2.Generate();
  ASSERT_TRUE(s1.ok() && s2.ok());
  bool any_difference = false;
  for (size_t i = 0; i < s1->size(); ++i) {
    if ((*s1)[i].workload_id != (*s2)[i].workload_id ||
        (*s1)[i].arrival.nanos() != (*s2)[i].arrival.nanos()) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(WorkloadDriverTest, ArrivalsAreMonotonicAndRateMatches) {
  DriverOptions opts;
  opts.num_queries = 2000;
  opts.arrival_rate_qps = 20;
  WorkloadDriver driver(SixClassCatalog(), opts);
  auto stream = driver.Generate();
  ASSERT_TRUE(stream.ok());
  dana::SimTime prev;
  for (const QueryRequest& r : *stream) {
    EXPECT_GE(r.arrival.nanos(), prev.nanos());
    prev = r.arrival;
  }
  // 2000 arrivals at 20 qps last ~100 s in expectation.
  EXPECT_NEAR(stream->back().arrival.seconds(), 100.0, 15.0);
}

TEST(WorkloadDriverTest, ZipfianSkewsTowardsHeadOfCatalog) {
  DriverOptions opts;
  opts.num_queries = 1000;
  opts.popularity = Popularity::kZipfian;
  opts.zipf_exponent = 1.2;
  WorkloadDriver driver(SixClassCatalog(), opts);
  auto stream = driver.Generate();
  ASSERT_TRUE(stream.ok());
  std::map<std::string, int> counts;
  for (const QueryRequest& r : *stream) counts[r.workload_id]++;
  // Rank 0 should dominate the tail decisively at s=1.2.
  EXPECT_GT(counts["a"], 2 * counts["f"]);
  EXPECT_GT(counts["a"], counts["b"]);
}

TEST(WorkloadDriverTest, UniformIsRoughlyBalanced) {
  DriverOptions opts;
  opts.num_queries = 6000;
  opts.popularity = Popularity::kUniform;
  WorkloadDriver driver(SixClassCatalog(), opts);
  auto stream = driver.Generate();
  ASSERT_TRUE(stream.ok());
  std::map<std::string, int> counts;
  for (const QueryRequest& r : *stream) counts[r.workload_id]++;
  for (const auto& [id, n] : counts) {
    EXPECT_NEAR(n, 1000, 150) << id;
  }
}

TEST(WorkloadDriverTest, RejectsBadConfigurations) {
  DriverOptions opts;
  EXPECT_TRUE(WorkloadDriver({}, opts).Generate().status().IsInvalidArgument());
  opts.arrival_rate_qps = 0;
  EXPECT_TRUE(WorkloadDriver(SixClassCatalog(), opts)
                  .Generate()
                  .status()
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Compile cache
// ---------------------------------------------------------------------------

TEST(CompileCacheTest, BuildsOncePerKey) {
  CompileCache cache;
  int builds = 0;
  auto builder = [&]() -> Result<compiler::CompiledUdf> {
    ++builds;
    compiler::CompiledUdf udf;
    udf.udf_name = "stub";
    return udf;
  };
  auto first = cache.GetOrCompile("linear_d10", builder);
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrCompile("linear_d10", builder);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(*first, *second);  // same stored object
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Find("linear_d10"), *first);
  EXPECT_EQ(cache.Find("absent"), nullptr);
}

TEST(CompileCacheTest, FailedBuildIsNotCached) {
  CompileCache cache;
  int calls = 0;
  auto builder = [&]() -> Result<compiler::CompiledUdf> {
    if (++calls == 1) return Status::Internal("transient");
    compiler::CompiledUdf udf;
    return udf;
  };
  EXPECT_FALSE(cache.GetOrCompile("k", builder).ok());
  EXPECT_TRUE(cache.GetOrCompile("k", builder).ok());
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
}

// ---------------------------------------------------------------------------
// Scheduler policies (driven by a synthetic executor)
// ---------------------------------------------------------------------------

class FakeExecutor : public QueryExecutor {
 public:
  /// Legacy per-query cost: every second is private, so a batch of K costs
  /// K * service and batching brings no benefit.
  void Set(const std::string& id, double service_s, double estimate_s,
           double compile_s = 0.0) {
    SetSplit(id, /*shared_s=*/0.0, /*per_query_s=*/service_s, estimate_s,
             compile_s);
  }

  /// Batched cost model: a batch of K queries occupies the slot for
  /// shared + K * per_query.
  void SetSplit(const std::string& id, double shared_s, double per_query_s,
                double estimate_s, double compile_s = 0.0) {
    costs_[id] = {dana::SimTime::Seconds(shared_s),
                  dana::SimTime::Seconds(per_query_s),
                  dana::SimTime::Seconds(compile_s)};
    estimates_[id] = dana::SimTime::Seconds(estimate_s);
  }

  /// Pins `id`'s warmth on `slot` for affinity tests; WarmFraction reports
  /// zero for anything not set (a cold machine).
  void SetWarm(const std::string& id, uint32_t slot, double fraction) {
    warmth_[{id, slot}] = fraction;
  }

  /// Pins the fully-warm estimate for residency-aware SJF ordering;
  /// EstimateAtWarmth interpolates between Estimate() (cold) and this.
  /// Unset ids estimate warmth-blind, like an executor without endpoints.
  void SetWarmEstimate(const std::string& id, double estimate_s) {
    warm_estimates_[id] = dana::SimTime::Seconds(estimate_s);
  }

  Result<BatchCost> Dispatch(const QueryBatch& batch) override {
    auto it = costs_.find(batch.workload_id);
    if (it == costs_.end()) return Status::NotFound(batch.workload_id);
    dispatched_.push_back(batch);
    BatchCost cost;
    cost.shared = it->second.shared;
    cost.per_query = it->second.per_query;
    cost.service =
        it->second.shared +
        it->second.per_query * static_cast<double>(batch.size());
    cost.compile = it->second.compile;
    cost.warm_fraction = WarmFraction(batch.workload_id, batch.slot);
    cost.residency_modeled = true;
    return cost;
  }

  Result<dana::SimTime> Estimate(const std::string& id) override {
    auto it = estimates_.find(id);
    if (it == estimates_.end()) return Status::NotFound(id);
    return it->second;
  }

  Result<dana::SimTime> EstimateAtWarmth(const std::string& id,
                                         double warm_fraction) override {
    auto warm = warm_estimates_.find(id);
    if (warm == warm_estimates_.end()) return Estimate(id);
    DANA_ASSIGN_OR_RETURN(dana::SimTime cold, Estimate(id));
    return warm->second + (cold - warm->second) * (1.0 - warm_fraction);
  }

  double WarmFraction(const std::string& id, uint32_t slot) override {
    auto it = warmth_.find({id, slot});
    return it == warmth_.end() ? 0.0 : it->second;
  }

  const std::vector<QueryBatch>& dispatched() const { return dispatched_; }

 private:
  struct Split {
    dana::SimTime shared;
    dana::SimTime per_query;
    dana::SimTime compile;
  };
  std::map<std::string, Split> costs_;
  std::map<std::string, dana::SimTime> estimates_;
  std::map<std::string, dana::SimTime> warm_estimates_;
  std::map<std::pair<std::string, uint32_t>, double> warmth_;
  std::vector<QueryBatch> dispatched_;
};

QueryRequest Req(uint64_t id, const std::string& workload, double arrival_s) {
  QueryRequest r;
  r.id = id;
  r.workload_id = workload;
  r.arrival = dana::SimTime::Seconds(arrival_s);
  return r;
}

std::vector<uint64_t> DispatchOrder(const ScheduleReport& report) {
  std::vector<uint64_t> order;
  for (const QueryStat& q : report.queries) order.push_back(q.id);
  return order;
}

TEST(SchedulerTest, FcfsDispatchesInArrivalOrder) {
  FakeExecutor exec;
  exec.Set("long", 100, 100);
  exec.Set("short", 1, 1);
  // All queued behind the long job on one slot.
  std::vector<QueryRequest> reqs = {Req(0, "long", 0), Req(1, "long", 1),
                                    Req(2, "short", 2), Req(3, "long", 3)};
  Scheduler sched({.slots = 1, .policy = Policy::kFcfs}, &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(DispatchOrder(*report), (std::vector<uint64_t>{0, 1, 2, 3}));
}

TEST(SchedulerTest, SjfPicksSmallestEstimateAmongQueued) {
  FakeExecutor exec;
  exec.Set("huge", 100, 100);
  exec.Set("mid", 30, 30);
  exec.Set("small", 10, 10);
  exec.Set("tiny", 5, 5);
  // "huge" occupies the slot; the rest queue up and must run in estimate
  // order, not arrival order.
  std::vector<QueryRequest> reqs = {Req(0, "huge", 0), Req(1, "mid", 1),
                                    Req(2, "small", 2), Req(3, "tiny", 3)};
  Scheduler sched({.slots = 1, .policy = Policy::kSjf}, &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(DispatchOrder(*report), (std::vector<uint64_t>{0, 3, 2, 1}));
}

TEST(SchedulerTest, RoundRobinAlternatesAcrossAlgorithms) {
  FakeExecutor exec;
  exec.Set("x", 10, 10);
  exec.Set("y", 10, 10);
  // Three x queries then one y, all arriving while the slot is busy: RR
  // must interleave y after the first x instead of draining x first.
  std::vector<QueryRequest> reqs = {Req(0, "x", 0), Req(1, "x", 1),
                                    Req(2, "x", 2), Req(3, "y", 3)};
  Scheduler sched({.slots = 1, .policy = Policy::kRoundRobin}, &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(DispatchOrder(*report), (std::vector<uint64_t>{0, 3, 1, 2}));
}

TEST(SchedulerTest, CompileChargedOnlyOnFirstDispatchOfEachAlgorithm) {
  FakeExecutor exec;
  exec.Set("a", 10, 10, /*compile_s=*/5);
  exec.Set("b", 10, 10, /*compile_s=*/5);
  std::vector<QueryRequest> reqs = {Req(0, "a", 0), Req(1, "a", 0),
                                    Req(2, "b", 0), Req(3, "a", 0)};
  Scheduler sched({.slots = 1, .policy = Policy::kFcfs}, &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->compile_misses, 2u);  // first "a", first "b"
  EXPECT_EQ(report->compile_hits, 2u);
  EXPECT_FALSE(report->queries[0].compile_hit);
  EXPECT_DOUBLE_EQ(report->queries[0].compile.seconds(), 5.0);
  EXPECT_TRUE(report->queries[1].compile_hit);
  EXPECT_DOUBLE_EQ(report->queries[1].compile.seconds(), 0.0);
  EXPECT_FALSE(report->queries[2].compile_hit);
  EXPECT_TRUE(report->queries[3].compile_hit);
  // Slot occupancy: 15 + 10 + 15 + 10 back to back.
  EXPECT_DOUBLE_EQ(report->makespan.seconds(), 50.0);
}

TEST(SchedulerTest, ConcurrentDispatchWaitsForInFlightCompile) {
  FakeExecutor exec;
  exec.Set("a", 10, 10, /*compile_s=*/5);
  // Both queries arrive at t=0 on 2 slots: the second is a cache hit but
  // must wait out the first's in-flight compile instead of starting a
  // training run with a design that does not exist until t=5.
  std::vector<QueryRequest> reqs = {Req(0, "a", 0), Req(1, "a", 0)};
  Scheduler sched({.slots = 2, .policy = Policy::kFcfs}, &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->queries[0].compile_hit);
  EXPECT_DOUBLE_EQ(report->queries[0].completion.seconds(), 15.0);
  EXPECT_TRUE(report->queries[1].compile_hit);
  EXPECT_DOUBLE_EQ(report->queries[1].compile.seconds(), 5.0);  // residual
  EXPECT_DOUBLE_EQ(report->queries[1].completion.seconds(), 15.0);
  // A third query dispatched after the compile finished pays nothing.
  reqs.push_back(Req(2, "a", 20));
  auto later = Scheduler({.slots = 2, .policy = Policy::kFcfs}, &exec)
                   .Run(reqs);
  ASSERT_TRUE(later.ok());
  EXPECT_TRUE(later->queries[2].compile_hit);
  EXPECT_DOUBLE_EQ(later->queries[2].compile.seconds(), 0.0);
}

TEST(SchedulerTest, SlotsNeverOverlapAndStartAfterArrival) {
  FakeExecutor exec;
  exec.Set("a", 7, 7);
  exec.Set("b", 3, 3);
  std::vector<QueryRequest> reqs;
  for (int i = 0; i < 40; ++i) {
    reqs.push_back(Req(static_cast<uint64_t>(i), i % 3 ? "a" : "b", 0.5 * i));
  }
  for (Policy policy : {Policy::kFcfs, Policy::kSjf, Policy::kRoundRobin}) {
    Scheduler sched({.slots = 3, .policy = policy}, &exec);
    auto report = sched.Run(reqs);
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report->queries.size(), reqs.size());
    std::map<uint32_t, dana::SimTime> slot_busy_until;
    dana::SimTime max_completion;
    for (const QueryStat& q : report->queries) {
      EXPECT_GE(q.start.nanos(), q.arrival.nanos());
      EXPECT_GE(q.slot, 0u);
      EXPECT_LT(q.slot, 3u);
      // Dispatch order visits each slot in nondecreasing free time, so a
      // query must start at or after its slot's previous completion.
      EXPECT_GE(q.start.nanos(), slot_busy_until[q.slot].nanos());
      slot_busy_until[q.slot] = q.completion;
      max_completion = dana::SimTime::Max(max_completion, q.completion);
      EXPECT_DOUBLE_EQ(q.completion.nanos(),
                       (q.start + q.compile + q.service).nanos());
    }
    EXPECT_DOUBLE_EQ(report->makespan.nanos(), max_completion.nanos());
    EXPECT_GT(report->ThroughputQps(), 0.0);
  }
}

TEST(SchedulerTest, SimultaneousArrivalsOnIdleSlotsStartAtArrival) {
  FakeExecutor exec;
  exec.Set("a", 5, 5);
  // Both slots idle since t=0; both queries arrive at t=10. The second
  // dispatch must not ride slot 1's stale free time back to t=0 and start
  // before its own arrival (negative wait, early completion).
  std::vector<QueryRequest> reqs = {Req(0, "a", 10), Req(1, "a", 10)};
  Scheduler sched({.slots = 2, .policy = Policy::kFcfs}, &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  for (const QueryStat& q : report->queries) {
    EXPECT_DOUBLE_EQ(q.start.seconds(), 10.0);
    EXPECT_DOUBLE_EQ(q.Wait().seconds(), 0.0);
    EXPECT_DOUBLE_EQ(q.completion.seconds(), 15.0);
  }
}

TEST(SchedulerTest, MoreSlotsFinishNoLater) {
  FakeExecutor exec;
  exec.Set("a", 10, 10);
  std::vector<QueryRequest> reqs;
  for (int i = 0; i < 16; ++i) reqs.push_back(Req(i, "a", 0));
  Scheduler one({.slots = 1, .policy = Policy::kFcfs}, &exec);
  Scheduler four({.slots = 4, .policy = Policy::kFcfs}, &exec);
  auto r1 = one.Run(reqs);
  auto r4 = four.Run(reqs);
  ASSERT_TRUE(r1.ok() && r4.ok());
  EXPECT_DOUBLE_EQ(r1->makespan.seconds(), 160.0);
  EXPECT_DOUBLE_EQ(r4->makespan.seconds(), 40.0);
}

TEST(SchedulerTest, SjfBeatsFcfsOnMeanLatencyForSkewedMix) {
  // A Zipfian mix over classes whose service times span 100x: the long jobs
  // head-of-line-block FCFS while SJF lets the swarm of short queries
  // through first.
  FakeExecutor exec;
  exec.Set("hot_short", 2, 2);
  exec.Set("warm_mid", 20, 20);
  exec.Set("cold_long", 200, 200);
  DriverOptions opts;
  opts.num_queries = 120;
  opts.arrival_rate_qps = 0.12;  // keeps one slot saturated
  opts.zipf_exponent = 1.0;
  WorkloadDriver driver({"hot_short", "warm_mid", "cold_long"}, opts);
  auto stream = driver.Generate();
  ASSERT_TRUE(stream.ok());

  Scheduler fcfs({.slots = 1, .policy = Policy::kFcfs}, &exec);
  Scheduler sjf({.slots = 1, .policy = Policy::kSjf}, &exec);
  auto r_fcfs = fcfs.Run(*stream);
  auto r_sjf = sjf.Run(*stream);
  ASSERT_TRUE(r_fcfs.ok() && r_sjf.ok());
  EXPECT_LT(r_sjf->MeanLatency().seconds(), r_fcfs->MeanLatency().seconds());
}

TEST(SchedulerTest, PolicyNamesRoundTrip) {
  for (Policy p : {Policy::kFcfs, Policy::kSjf, Policy::kRoundRobin}) {
    auto parsed = ParsePolicy(PolicyName(p));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_TRUE(ParsePolicy("lifo").status().IsInvalidArgument());
  EXPECT_TRUE(ParsePopularity("pareto").status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Cross-query batched dispatch
// ---------------------------------------------------------------------------

TEST(BatchingTest, CoalescesCoResidentSameAlgorithmQueries) {
  FakeExecutor exec;
  // One pass streams for 10 s; each co-trained model adds 2 s of engine.
  exec.SetSplit("a", /*shared=*/10, /*per_query=*/2, /*estimate=*/12);
  // Query 0 dispatches alone at t=0 (nothing else is queued yet); 1..3
  // arrive while the slot is busy and coalesce into one batched pass.
  std::vector<QueryRequest> reqs = {Req(0, "a", 0), Req(1, "a", 1),
                                    Req(2, "a", 2), Req(3, "a", 3)};
  Scheduler sched({.slots = 1, .policy = Policy::kFcfs, .max_batch = 4},
                  &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->queries.size(), 4u);
  EXPECT_EQ(report->batches, 2u);
  EXPECT_EQ(report->queries[0].batch_size, 1u);
  EXPECT_DOUBLE_EQ(report->queries[0].completion.seconds(), 12.0);
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(report->queries[i].batch_size, 3u);
    EXPECT_DOUBLE_EQ(report->queries[i].start.seconds(), 12.0);
    // Batched service: 10 + 3 * 2 = 16 s, all members complete together.
    EXPECT_DOUBLE_EQ(report->queries[i].service.seconds(), 16.0);
    EXPECT_DOUBLE_EQ(report->queries[i].completion.seconds(), 28.0);
  }
  EXPECT_DOUBLE_EQ(report->makespan.seconds(), 28.0);
  // vs unbatched: 4 queries x 12 s back to back = 48 s.
  Scheduler unbatched({.slots = 1, .policy = Policy::kFcfs}, &exec);
  auto base = unbatched.Run(reqs);
  ASSERT_TRUE(base.ok());
  EXPECT_DOUBLE_EQ(base->makespan.seconds(), 48.0);
  EXPECT_GT(report->ThroughputQps(), base->ThroughputQps());
}

TEST(BatchingTest, OnlyCoalescesMatchingAlgorithmUpToMaxBatch) {
  FakeExecutor exec;
  exec.SetSplit("a", 10, 2, 12);
  exec.SetSplit("b", 10, 2, 12);
  // Queued while busy: a, b, a, a, a. Batch limit 3: the head "a" takes
  // two more "a"s, skipping the interleaved "b".
  std::vector<QueryRequest> reqs = {Req(0, "a", 0), Req(1, "a", 1),
                                    Req(2, "b", 1.5), Req(3, "a", 2),
                                    Req(4, "a", 2.5), Req(5, "a", 3)};
  Scheduler sched({.slots = 1, .policy = Policy::kFcfs, .max_batch = 3},
                  &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  // Dispatches: {0}, {1,3,4} (batch of 3 "a"s), {2} ("b"), {5}.
  ASSERT_EQ(exec.dispatched().size(), 4u);
  EXPECT_EQ(DispatchOrder(*report), (std::vector<uint64_t>{0, 1, 3, 4, 2, 5}));
  EXPECT_EQ(report->queries[1].batch_size, 3u);
  EXPECT_EQ(report->queries[4].workload_id, "b");
  EXPECT_EQ(report->queries[4].batch_size, 1u);
}

TEST(BatchingTest, MaxBatchOneReproducesPerQueryScheduleBitForBit) {
  FakeExecutor exec;
  exec.SetSplit("hot", 1, 0.5, 1.5);
  exec.SetSplit("cold", 4, 3, 7);
  DriverOptions opts;
  opts.num_queries = 60;
  opts.arrival_rate_qps = 0.7;
  WorkloadDriver driver({"hot", "cold"}, opts);
  auto stream = driver.Generate();
  ASSERT_TRUE(stream.ok());
  for (Policy policy : {Policy::kFcfs, Policy::kSjf, Policy::kRoundRobin}) {
    Scheduler defaults({.slots = 2, .policy = policy}, &exec);
    Scheduler explicit_one(
        {.slots = 2, .policy = policy, .max_batch = 1, .sjf_aging_weight = 0},
        &exec);
    auto a = defaults.Run(*stream);
    auto b = explicit_one.Run(*stream);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->queries.size(), b->queries.size());
    for (size_t i = 0; i < a->queries.size(); ++i) {
      EXPECT_EQ(a->queries[i].id, b->queries[i].id);
      EXPECT_EQ(a->queries[i].slot, b->queries[i].slot);
      EXPECT_EQ(a->queries[i].start.nanos(), b->queries[i].start.nanos());
      EXPECT_EQ(a->queries[i].completion.nanos(),
                b->queries[i].completion.nanos());
      EXPECT_EQ(a->queries[i].batch_size, 1u);
    }
  }
}

TEST(BatchingTest, BatchedScheduleIsDeterministic) {
  FakeExecutor exec;
  exec.SetSplit("x", 5, 1, 2);
  exec.SetSplit("y", 8, 2, 6);
  DriverOptions opts;
  opts.num_queries = 80;
  opts.arrival_rate_qps = 2.0;
  WorkloadDriver driver({"x", "y"}, opts);
  auto stream = driver.Generate();
  ASSERT_TRUE(stream.ok());
  Scheduler s1({.slots = 2, .policy = Policy::kSjf, .max_batch = 4}, &exec);
  Scheduler s2({.slots = 2, .policy = Policy::kSjf, .max_batch = 4}, &exec);
  auto r1 = s1.Run(*stream);
  auto r2 = s2.Run(*stream);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1->queries.size(), r2->queries.size());
  for (size_t i = 0; i < r1->queries.size(); ++i) {
    EXPECT_EQ(r1->queries[i].id, r2->queries[i].id);
    EXPECT_EQ(r1->queries[i].completion.nanos(),
              r2->queries[i].completion.nanos());
    EXPECT_EQ(r1->queries[i].batch_size, r2->queries[i].batch_size);
  }
  EXPECT_EQ(r1->batches, r2->batches);
}

TEST(BatchingTest, BatchCompileMissChargedOncePerBatch) {
  FakeExecutor exec;
  exec.SetSplit("a", 10, 2, 12, /*compile_s=*/5);
  std::vector<QueryRequest> reqs = {Req(0, "a", 0), Req(1, "a", 0),
                                    Req(2, "a", 0)};
  Scheduler sched({.slots = 1, .policy = Policy::kFcfs, .max_batch = 4},
                  &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  // All three arrive at t=0 and form one batch: one design compile.
  EXPECT_EQ(report->batches, 1u);
  EXPECT_EQ(report->compile_misses, 1u);
  EXPECT_EQ(report->compile_hits, 2u);
  // compile (5) + shared (10) + 3 per-query (6) = 21 s.
  EXPECT_DOUBLE_EQ(report->makespan.seconds(), 21.0);
}

// ---------------------------------------------------------------------------
// SJF aging (starvation fix)
// ---------------------------------------------------------------------------

/// One long job stuck behind an endless stream of shorts on one slot.
std::vector<QueryRequest> StarvationStream() {
  std::vector<QueryRequest> reqs;
  reqs.push_back(Req(0, "long", 0.0));
  // Two shorts arrive per second for 100 s; each takes 1 s of service, so
  // pure SJF always finds a queued short and the long job runs dead last.
  for (int i = 0; i < 200; ++i) {
    reqs.push_back(Req(1 + static_cast<uint64_t>(i), "short", 0.5 * i));
  }
  return reqs;
}

TEST(SjfAgingTest, PureSjfStarvesTheLongJob) {
  FakeExecutor exec;
  exec.Set("long", 50, 50);
  exec.Set("short", 1, 1);
  Scheduler sched({.slots = 1, .policy = Policy::kSjf}, &exec);
  auto report = sched.Run(StarvationStream());
  ASSERT_TRUE(report.ok());
  // The long job is the very last dispatch of the whole run.
  EXPECT_EQ(report->queries.back().id, 0u);
  EXPECT_DOUBLE_EQ(report->queries.back().completion.nanos(),
                   report->makespan.nanos());
}

TEST(SjfAgingTest, AgingBonusBoundsTheLongJobsWait) {
  FakeExecutor exec;
  exec.Set("long", 50, 50);
  exec.Set("short", 1, 1);
  Scheduler aged(
      {.slots = 1, .policy = Policy::kSjf, .sjf_aging_weight = 4.0}, &exec);
  auto report = aged.Run(StarvationStream());
  ASSERT_TRUE(report.ok());
  const QueryStat* long_job = nullptr;
  for (const QueryStat& q : report->queries) {
    if (q.id == 0) long_job = &q;
  }
  ASSERT_NE(long_job, nullptr);
  // Queued shorts age too (the backlog's oldest short is roughly half the
  // clock old), so with weight w the long job overtakes around
  // 49 / (w/2) s. For w=4 that is ~25 s — far from the ~200 s starvation.
  EXPECT_LT(long_job->Wait().seconds(), 40.0);
  EXPECT_LT(long_job->completion.nanos(), report->makespan.nanos());
  // Everything still completes exactly once, with no idle time added.
  EXPECT_EQ(report->queries.size(), 201u);
  EXPECT_DOUBLE_EQ(report->makespan.seconds(), 250.0);
}

// ---------------------------------------------------------------------------
// Closed-loop (think-time) mode
// ---------------------------------------------------------------------------

TEST(ClosedLoopTest, SingleSessionSerializesWithThinkTime) {
  FakeExecutor exec;
  exec.Set("a", 2, 2);
  Scheduler sched({.slots = 1, .policy = Policy::kFcfs}, &exec);
  auto report = sched.RunClosedLoop({{"a", "a", "a"}},
                                    dana::SimTime::Seconds(3));
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->queries.size(), 3u);
  // submit 0 -> done 2, think to 5 -> done 7, think to 10 -> done 12.
  EXPECT_DOUBLE_EQ(report->queries[0].arrival.seconds(), 0.0);
  EXPECT_DOUBLE_EQ(report->queries[0].completion.seconds(), 2.0);
  EXPECT_DOUBLE_EQ(report->queries[1].arrival.seconds(), 5.0);
  EXPECT_DOUBLE_EQ(report->queries[1].completion.seconds(), 7.0);
  EXPECT_DOUBLE_EQ(report->queries[2].arrival.seconds(), 10.0);
  EXPECT_DOUBLE_EQ(report->queries[2].completion.seconds(), 12.0);
  EXPECT_DOUBLE_EQ(report->makespan.seconds(), 12.0);
}

TEST(ClosedLoopTest, ZeroThinkKeepsOneSlotSaturated) {
  FakeExecutor exec;
  exec.Set("a", 2, 2);
  Scheduler sched({.slots = 1, .policy = Policy::kFcfs}, &exec);
  // Two sessions with zero think time on one slot: the slot never idles,
  // so the makespan is exactly the summed service.
  auto report =
      sched.RunClosedLoop({{"a", "a"}, {"a", "a"}}, dana::SimTime::Zero());
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->queries.size(), 4u);
  EXPECT_DOUBLE_EQ(report->makespan.seconds(), 8.0);
  for (const QueryStat& q : report->queries) {
    EXPECT_GE(q.start.nanos(), q.arrival.nanos());
  }
}

TEST(ClosedLoopTest, DeterministicAndBatchable) {
  FakeExecutor exec;
  exec.SetSplit("a", 4, 1, 5);
  exec.SetSplit("b", 6, 2, 8);
  std::vector<std::vector<std::string>> sessions = {
      {"a", "b", "a"}, {"a", "a"}, {"b", "a", "a"}};
  Scheduler s1({.slots = 1, .policy = Policy::kFcfs, .max_batch = 4}, &exec);
  Scheduler s2({.slots = 1, .policy = Policy::kFcfs, .max_batch = 4}, &exec);
  auto r1 = s1.RunClosedLoop(sessions, dana::SimTime::Seconds(0.5));
  auto r2 = s2.RunClosedLoop(sessions, dana::SimTime::Seconds(0.5));
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1->queries.size(), 8u);
  ASSERT_EQ(r2->queries.size(), 8u);
  for (size_t i = 0; i < r1->queries.size(); ++i) {
    EXPECT_EQ(r1->queries[i].id, r2->queries[i].id);
    EXPECT_EQ(r1->queries[i].completion.nanos(),
              r2->queries[i].completion.nanos());
  }
  // The three t=0 submissions of "a"-headed sessions batch where possible.
  EXPECT_LT(r1->batches, 8u);
}

TEST(ClosedLoopTest, DriverDealsSessionsReproducibly) {
  DriverOptions opts;
  opts.num_queries = 30;
  opts.sessions = 4;
  WorkloadDriver driver(SixClassCatalog(), opts);
  auto s1 = driver.GenerateSessions();
  auto s2 = driver.GenerateSessions();
  ASSERT_TRUE(s1.ok() && s2.ok());
  ASSERT_EQ(s1->size(), 4u);
  size_t total = 0;
  for (const auto& script : *s1) total += script.size();
  EXPECT_EQ(total, 30u);
  EXPECT_EQ(*s1, *s2);
  // Same seed, same picks as the open stream: flattening the scripts
  // round-robin recovers the open stream's algorithm sequence.
  auto stream = driver.Generate();
  ASSERT_TRUE(stream.ok());
  for (size_t i = 0; i < stream->size(); ++i) {
    EXPECT_EQ((*stream)[i].workload_id, (*s1)[i % 4][i / 4]) << i;
  }
}

TEST(ClosedLoopTest, RejectsZeroSessions) {
  DriverOptions opts;
  opts.sessions = 0;
  WorkloadDriver driver(SixClassCatalog(), opts);
  EXPECT_TRUE(driver.GenerateSessions().status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Slot-affinity dispatch
// ---------------------------------------------------------------------------

TEST(AffinityTest, DispatchesToTheWarmSlot) {
  FakeExecutor exec;
  exec.Set("a", 10, 10);
  exec.SetWarm("a", /*slot=*/1, 1.0);
  std::vector<QueryRequest> reqs = {Req(0, "a", 0)};
  // Affinity-blind: earliest-free = lowest index = slot 0, a cold run.
  auto blind = Scheduler({.slots = 2, .policy = Policy::kFcfs}, &exec)
                   .Run(reqs);
  ASSERT_TRUE(blind.ok());
  EXPECT_EQ(blind->queries[0].slot, 0u);
  EXPECT_DOUBLE_EQ(blind->queries[0].warm_fraction, 0.0);
  // Affinity on: both slots are free, slot 1 holds the table.
  auto warm = Scheduler(
                  {.slots = 2, .policy = Policy::kFcfs, .affinity_weight = 0.5},
                  &exec)
                  .Run(reqs);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->queries[0].slot, 1u);
  EXPECT_DOUBLE_EQ(warm->queries[0].warm_fraction, 1.0);
  EXPECT_DOUBLE_EQ(warm->WarmHitRate(), 1.0);
  EXPECT_DOUBLE_EQ(blind->WarmHitRate(), 0.0);
}

TEST(AffinityTest, WarmSlotTiesBreakLikeTheBlindRule) {
  FakeExecutor exec;
  exec.Set("a", 5, 5);
  // No warmth anywhere: affinity on must still pick the blind slot.
  std::vector<QueryRequest> reqs = {Req(0, "a", 0), Req(1, "a", 6)};
  auto report = Scheduler(
                    {.slots = 2, .policy = Policy::kFcfs,
                     .affinity_weight = 1.0},
                    &exec)
                    .Run(reqs);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->queries[0].slot, 0u);
  // At t=6 slot 0 is free again (freed at 5) and slot 1 never used; the
  // blind rule picks slot 1 (earliest free time 0), so must affinity.
  EXPECT_EQ(report->queries[1].slot, 1u);
}

TEST(AffinityTest, FcfsKeepsArrivalOrderUnderAffinity) {
  FakeExecutor exec;
  exec.Set("cold", 10, 10);
  exec.Set("warm", 10, 10);
  exec.SetWarm("warm", 0, 1.0);
  // Both queue behind the first query on one slot; FCFS with affinity must
  // not jump the warm candidate past the earlier cold arrival.
  std::vector<QueryRequest> reqs = {Req(0, "cold", 0), Req(1, "cold", 1),
                                    Req(2, "warm", 2)};
  auto report = Scheduler(
                    {.slots = 1, .policy = Policy::kFcfs,
                     .affinity_weight = 1.0},
                    &exec)
                    .Run(reqs);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(DispatchOrder(*report), (std::vector<uint64_t>{0, 1, 2}));
}

TEST(AffinityTest, SjfOrdersByResidencyAwareEstimate) {
  FakeExecutor exec;
  exec.Set("blocker", 100, 100);
  exec.Set("coldshort", 10, 10);
  exec.Set("warmlong", 12, 12);
  exec.SetWarm("warmlong", 0, 1.0);
  // The executor's own cold/warm interpolation: a fully warm "warmlong"
  // run is expected to take 6 s, not its cold 12 s estimate.
  exec.SetWarmEstimate("warmlong", 6);
  std::vector<QueryRequest> reqs = {Req(0, "blocker", 0),
                                    Req(1, "coldshort", 1),
                                    Req(2, "warmlong", 2)};
  // Pure SJF: the shorter a-priori estimate goes first.
  auto pure = Scheduler({.slots = 1, .policy = Policy::kSjf}, &exec)
                  .Run(reqs);
  ASSERT_TRUE(pure.ok());
  EXPECT_EQ(DispatchOrder(*pure), (std::vector<uint64_t>{0, 1, 2}));
  // Affinity SJF orders by EstimateAtWarmth at the free slot's warmth: the
  // warm candidate's 6 s beats the cold short job's 10 s, so it overtakes.
  auto warm = Scheduler(
                  {.slots = 1, .policy = Policy::kSjf, .affinity_weight = 0.5},
                  &exec)
                  .Run(reqs);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(DispatchOrder(*warm), (std::vector<uint64_t>{0, 2, 1}));
}

TEST(AffinityTest, WeightZeroNeverConsultsWarmthBitForBit) {
  // Two identical streams on two executors — one with warmth pinned, one
  // stone cold. At affinity_weight = 0 the schedules must match bit for
  // bit: the affinity machinery may not even perturb tie-breaks.
  DriverOptions opts;
  opts.num_queries = 80;
  opts.arrival_rate_qps = 0.8;
  WorkloadDriver driver({"x", "y", "z"}, opts);
  auto stream = driver.Generate();
  ASSERT_TRUE(stream.ok());
  for (Policy policy : {Policy::kFcfs, Policy::kSjf, Policy::kRoundRobin}) {
    FakeExecutor with_warmth;
    FakeExecutor without;
    for (FakeExecutor* e : {&with_warmth, &without}) {
      e->SetSplit("x", 2, 1, 3);
      e->SetSplit("y", 5, 2, 7);
      e->SetSplit("z", 9, 3, 12);
    }
    with_warmth.SetWarm("x", 0, 1.0);
    with_warmth.SetWarm("z", 1, 0.7);
    auto a = Scheduler({.slots = 2, .policy = policy, .max_batch = 3,
                        .affinity_weight = 0.0},
                       &with_warmth)
                 .Run(*stream);
    auto b = Scheduler({.slots = 2, .policy = policy, .max_batch = 3},
                       &without)
                 .Run(*stream);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->queries.size(), b->queries.size());
    for (size_t i = 0; i < a->queries.size(); ++i) {
      EXPECT_EQ(a->queries[i].id, b->queries[i].id);
      EXPECT_EQ(a->queries[i].slot, b->queries[i].slot);
      EXPECT_EQ(a->queries[i].start.nanos(), b->queries[i].start.nanos());
      EXPECT_EQ(a->queries[i].completion.nanos(),
                b->queries[i].completion.nanos());
    }
  }
}

/// Executor with no residency model: it reports a static warm fraction
/// (the fixed-cache regime), which says nothing about placement.
class StaticCacheExecutor : public QueryExecutor {
 public:
  Result<BatchCost> Dispatch(const QueryBatch& batch) override {
    (void)batch;
    BatchCost cost;
    cost.service = dana::SimTime::Seconds(5);
    cost.warm_fraction = 1.0;       // static: every run "warm"
    cost.residency_modeled = false; // ...but nothing tracked it
    return cost;
  }
  Result<dana::SimTime> Estimate(const std::string&) override {
    return dana::SimTime::Seconds(5);
  }
};

TEST(WarmHitAccountingTest, UnmodeledExecutorsAreExcludedNotCold) {
  // A static-cache executor must not skew warm-hit rates: with no
  // residency-modeled query in the report, the rate is NaN ("-"), not 0%
  // (all-cold) and not 100% (its static fraction).
  StaticCacheExecutor unmodeled;
  std::vector<QueryRequest> reqs = {Req(0, "a", 0), Req(1, "a", 1)};
  auto report = Scheduler({.slots = 1, .policy = Policy::kFcfs}, &unmodeled)
                    .Run(reqs);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(std::isnan(report->WarmHitRate()));
  EXPECT_TRUE(std::isnan(report->MeanWarmFraction()));

  // A residency-modeled executor keeps reporting real rates.
  FakeExecutor modeled;
  modeled.Set("a", 5, 5);
  modeled.SetWarm("a", 0, 1.0);
  auto tracked = Scheduler({.slots = 1, .policy = Policy::kFcfs}, &modeled)
                     .Run(reqs);
  ASSERT_TRUE(tracked.ok());
  EXPECT_DOUBLE_EQ(tracked->WarmHitRate(), 1.0);
  EXPECT_DOUBLE_EQ(tracked->MeanWarmFraction(), 1.0);
}

// ---------------------------------------------------------------------------
// Cold-start regression (DanaQueryExecutor residency charging)
// ---------------------------------------------------------------------------

TEST(ColdStartTest, FreshSlotPaysColdThenWarmRepeat) {
  DanaQueryExecutor executor;
  // First query on a fresh slot: genuinely cold, no silent re-prepare.
  auto first = executor.Dispatch(QueryBatch::Single("wlan", 0, /*slot=*/0));
  ASSERT_TRUE(first.ok());
  EXPECT_DOUBLE_EQ(first->warm_fraction, 0.0);
  // A repeat on the same slot finds the table resident and runs strictly
  // faster.
  auto repeat = executor.Dispatch(QueryBatch::Single("wlan", 1, /*slot=*/0));
  ASSERT_TRUE(repeat.ok());
  EXPECT_DOUBLE_EQ(repeat->warm_fraction, 1.0);
  EXPECT_LT(repeat->service.nanos(), first->service.nanos());
  // Another fresh slot is cold again — pools do not share residency.
  auto other = executor.Dispatch(QueryBatch::Single("wlan", 2, /*slot=*/1));
  ASSERT_TRUE(other.ok());
  EXPECT_DOUBLE_EQ(other->warm_fraction, 0.0);
  EXPECT_DOUBLE_EQ(other->service.nanos(), first->service.nanos());
  // WarmFraction mirrors the model without running anything.
  EXPECT_DOUBLE_EQ(executor.WarmFraction("wlan", 0), 1.0);
  EXPECT_DOUBLE_EQ(executor.WarmFraction("wlan", 2), 0.0);
  // ResetResidency returns every slot to cold.
  executor.ResetResidency();
  EXPECT_DOUBLE_EQ(executor.WarmFraction("wlan", 0), 0.0);
}

TEST(ColdStartTest, LegacyRegimeReproducesPr2FixedWarmCosts) {
  // model_residency = false is the PR 2 executor: every run silently
  // re-prepared to warm, so slot history never changes the charge.
  DanaQueryExecutor::Options legacy;
  legacy.model_residency = false;
  DanaQueryExecutor executor(legacy);
  auto a = executor.Dispatch(QueryBatch::Single("wlan", 0, 0));
  auto b = executor.Dispatch(QueryBatch::Single("wlan", 1, 0));
  auto c = executor.Dispatch(QueryBatch::Single("wlan", 2, 1));
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_DOUBLE_EQ(a->service.nanos(), b->service.nanos());
  EXPECT_DOUBLE_EQ(a->service.nanos(), c->service.nanos());
  EXPECT_DOUBLE_EQ(a->warm_fraction, 1.0);
  EXPECT_DOUBLE_EQ(executor.WarmFraction("wlan", 0), 1.0);

  // The residency executor's warm repeat charges exactly the legacy (warm)
  // service: the steady state agrees, only cold starts differ.
  DanaQueryExecutor modeled;
  ASSERT_TRUE(modeled.Dispatch(QueryBatch::Single("wlan", 0, 0)).ok());
  auto warm_repeat = modeled.Dispatch(QueryBatch::Single("wlan", 1, 0));
  ASSERT_TRUE(warm_repeat.ok());
  EXPECT_DOUBLE_EQ(warm_repeat->service.nanos(), a->service.nanos());
}

}  // namespace
}  // namespace dana::sched
