#include <gtest/gtest.h>

#include <cstring>

#include "storage/page.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "strider/assembler.h"
#include "strider/codegen.h"
#include "strider/isa.h"
#include "strider/simulator.h"

namespace dana::strider {
namespace {

// ---------------------------------------------------------------------------
// Instruction encoding
// ---------------------------------------------------------------------------

class EncodeTest : public ::testing::TestWithParam<int> {};

TEST_P(EncodeTest, EncodeDecodeRoundTripsEveryOpcode) {
  Instruction ins;
  ins.op = static_cast<Opcode>(GetParam());
  ins.f1 = Operand::Reg(17);
  ins.f2 = Operand::Imm(9);
  ins.f3 = Operand::Reg(3);
  const uint32_t word = ins.Encode();
  EXPECT_LT(word, 1u << 22);  // fixed 22-bit length (Table 2)
  auto back = Instruction::Decode(word);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->op, ins.op);
  EXPECT_EQ(back->f1.is_reg, true);
  EXPECT_EQ(back->f1.value, 17);
  EXPECT_EQ(back->f2.is_reg, false);
  EXPECT_EQ(back->f2.value, 9);
  EXPECT_EQ(back->f3.value, 3);
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodeTest, ::testing::Range(0, 11));

TEST(EncodeTest, DecodeRejectsBadOpcode) {
  EXPECT_TRUE(Instruction::Decode(15u << 18).status().IsCorruption());
}

TEST(EncodeTest, DecodeRejectsHighBits) {
  EXPECT_TRUE(Instruction::Decode(1u << 22).status().IsCorruption());
}

TEST(EncodeTest, Imm12RoundTrip) {
  for (uint32_t imm : {0u, 1u, 31u, 32u, 1103u, 4095u}) {
    auto ins = Instruction::MakeIns(16, imm);
    EXPECT_EQ(ins.Imm12(), imm);
    auto back = Instruction::Decode(ins.Encode());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->Imm12(), imm);
  }
}

TEST(EncodeTest, OperandRendering) {
  EXPECT_EQ(Operand::Reg(0).ToString(), "%cr0");
  EXPECT_EQ(Operand::Reg(15).ToString(), "%cr15");
  EXPECT_EQ(Operand::Reg(16).ToString(), "%t0");
  EXPECT_EQ(Operand::Reg(31).ToString(), "%t15");
  EXPECT_EQ(Operand::Imm(12).ToString(), "12");
}

TEST(EncodeTest, BitSpecPacking) {
  EXPECT_EQ(PackBitSpec(17, 15), (17u << 6) | 15u);
  EXPECT_EQ(PackByteSpec(2, 1), PackBitSpec(16, 8));
}

// ---------------------------------------------------------------------------
// Assembler
// ---------------------------------------------------------------------------

TEST(AssemblerTest, AssemblesPaperStyleSnippet) {
  // Adapted from the paper's §5.1.2 assembly example.
  const char* text = R"(
    \\ Page header processing
    readB %t0, 12, 2
    ad    %t6, 24, 0
    bentr
    readB %t2, %t6, 4
    extrBi %t4, %t2, %cr3
    cln   %t4, %t5, %cr2
    ad    %t6, %t6, 4
    bexit 1, %t6, %t0
  )";
  auto prog = Assemble(text);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_EQ(prog->code.size(), 8u);
  EXPECT_EQ(prog->code[0].op, Opcode::kReadB);
  EXPECT_EQ(prog->code[2].op, Opcode::kBentr);
  EXPECT_EQ(prog->code[7].op, Opcode::kBexit);
}

TEST(AssemblerTest, DisassembleRoundTrips) {
  const char* text = "readB %t0, 12, 2\nins %t1, 1103\nbentr\n"
                     "ad %t0, %t0, 4\nbexit 1, %t0, %cr0\n";
  auto prog = Assemble(text);
  ASSERT_TRUE(prog.ok());
  auto prog2 = Assemble(Disassemble(*prog));
  ASSERT_TRUE(prog2.ok());
  ASSERT_EQ(prog2->code.size(), prog->code.size());
  for (size_t i = 0; i < prog->code.size(); ++i) {
    EXPECT_EQ(prog2->code[i].Encode(), prog->code[i].Encode()) << i;
  }
}

TEST(AssemblerTest, RejectsUnknownMnemonic) {
  EXPECT_TRUE(Assemble("frobnicate %t0, 1, 2").status().IsInvalidArgument());
}

TEST(AssemblerTest, RejectsWideImmediate) {
  EXPECT_TRUE(Assemble("readB %t0, 999, 2").status().IsOutOfRange());
}

TEST(AssemblerTest, InsAccepts12Bits) {
  EXPECT_TRUE(Assemble("ins %t0, 4095").ok());
  EXPECT_TRUE(Assemble("ins %t0, 4096").status().IsOutOfRange());
}

TEST(AssemblerTest, RejectsUnbalancedLoops) {
  EXPECT_TRUE(Assemble("bexit 1, %t0, %t1").status().IsInvalidArgument());
  EXPECT_TRUE(Assemble("bentr").status().IsInvalidArgument());
}

TEST(AssemblerTest, RejectsBadRegister) {
  EXPECT_TRUE(Assemble("readB %t99, 0, 2").status().IsInvalidArgument());
  EXPECT_TRUE(Assemble("readB %cr16, 0, 2").status().IsInvalidArgument());
}

TEST(AssemblerTest, RejectsWrongArity) {
  EXPECT_TRUE(Assemble("readB %t0, 1").status().IsInvalidArgument());
  EXPECT_TRUE(Assemble("bentr 1").status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Simulator semantics
// ---------------------------------------------------------------------------

std::vector<uint8_t> TestPage(size_t n = 256) {
  std::vector<uint8_t> page(n);
  for (size_t i = 0; i < n; ++i) page[i] = static_cast<uint8_t>(i & 0xFF);
  return page;
}

TEST(SimulatorTest, ReadBLittleEndian) {
  auto prog = Assemble("readB %t0, 4, 4\nwriteB 16, %t0, 4").ValueOrDie();
  StriderSim sim;
  auto run = sim.Run(prog, TestPage());
  ASSERT_TRUE(run.ok());
  // Bytes 4..7 are 04 05 06 07 -> LE 0x07060504; written back verbatim.
  EXPECT_EQ(run->instructions, 2u);
}

TEST(SimulatorTest, ArithmeticOps) {
  // t0 = 20 + 5; t1 = t0 - 3; t2 = t1 * 2 => 44; write to page.
  auto prog = Assemble(
      "ad %t0, 20, 5\nsub %t1, %t0, 3\nmul %t2, %t1, 2\nwriteB 0, %t2, 4\n"
      "readB %t3, 0, 4\ncln 0, 4, 0")
                  .ValueOrDie();
  StriderSim sim;
  auto run = sim.Run(prog, TestPage());
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->tuples.size(), 1u);
  uint32_t v;
  std::memcpy(&v, run->tuples[0].data(), 4);
  EXPECT_EQ(v, 44u);
}

TEST(SimulatorTest, ExtrBiExtractsBitFields) {
  // Write a packed ItemId-like value and extract both fields.
  const uint32_t packed = storage::PackItemId(1234, 1, 56);
  std::vector<uint8_t> page(64);
  std::memcpy(page.data(), &packed, 4);
  StriderProgram prog = Assemble(
      "readB %t0, 0, 4\n"
      "extrBi %t1, %t0, %cr0\n"   // offset field
      "extrBi %t2, %t0, %cr1\n"   // length field
      "writeB 8, %t1, 4\nwriteB 12, %t2, 4\n"
      "cln 8, 8, 0")
                           .ValueOrDie();
  prog.config[0] = PackBitSpec(0, 15);
  prog.config[1] = PackBitSpec(17, 15);
  StriderSim sim;
  auto run = sim.Run(prog, page);
  ASSERT_TRUE(run.ok());
  uint32_t off, len;
  std::memcpy(&off, run->tuples[0].data(), 4);
  std::memcpy(&len, run->tuples[0].data() + 4, 4);
  EXPECT_EQ(off, 1234u);
  EXPECT_EQ(len, 56u);
}

TEST(SimulatorTest, LoopIterationViaBexit) {
  // Sum addresses 0..3 into t1 by looping.
  auto prog = Assemble(
      "ad %t0, 0, 0\n"      // cursor
      "ad %t1, 0, 0\n"      // acc
      "bentr\n"
      "readB %t2, %t0, 1\n"
      "ad %t1, %t1, %t2\n"
      "ad %t0, %t0, 1\n"
      "bexit 1, %t0, 4\n"   // exit when cursor >= 4
      "writeB 16, %t1, 4\ncln 16, 4, 0")
                  .ValueOrDie();
  StriderSim sim;
  auto run = sim.Run(prog, TestPage());
  ASSERT_TRUE(run.ok());
  uint32_t acc;
  std::memcpy(&acc, run->tuples[0].data(), 4);
  EXPECT_EQ(acc, 0u + 1 + 2 + 3);
}

TEST(SimulatorTest, RunawayLoopHitsCycleBudget) {
  auto prog = Assemble("bentr\nad %t0, %t0, 0\nbexit 1, %t0, 1").ValueOrDie();
  StriderSim sim;
  EXPECT_TRUE(
      sim.Run(prog, TestPage(), /*max_cycles=*/1000).status()
          .IsResourceExhausted());
}

TEST(SimulatorTest, OutOfRangeReadFails) {
  auto prog = Assemble("ins %t0, 4000\nreadB %t1, %t0, 4").ValueOrDie();
  StriderSim sim;
  EXPECT_TRUE(sim.Run(prog, TestPage(256)).status().IsOutOfRange());
}

TEST(SimulatorTest, ClnChargesEmissionCycles) {
  // Emitting 64 bytes at 8 B/cycle costs 8 extra cycles over the instr.
  std::vector<uint8_t> page(128, 0xCC);
  auto prog = Assemble("cln 0, 31, 0").ValueOrDie();
  StriderSim sim(8);
  auto run = sim.Run(prog, page);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->cycles, 1u + (31 + 7) / 8);
}

TEST(SimulatorTest, ConfigRegistersPreloaded) {
  StriderProgram prog = Assemble("writeB 0, %cr7, 4\ncln 0, 4, 0").ValueOrDie();
  prog.config[7] = 0xDEADBEEF;
  StriderSim sim;
  auto run = sim.Run(prog, TestPage());
  ASSERT_TRUE(run.ok());
  uint32_t v;
  std::memcpy(&v, run->tuples[0].data(), 4);
  EXPECT_EQ(v, 0xDEADBEEFu);
}

// ---------------------------------------------------------------------------
// Page-walk program against real storage pages (the paper's core loop)
// ---------------------------------------------------------------------------

struct WalkCase {
  uint32_t page_size;
  uint32_t features;
  uint32_t rows;
};

class PageWalkTest : public ::testing::TestWithParam<WalkCase> {};

TEST_P(PageWalkTest, ExtractsExactlyTheStoredTuples) {
  const WalkCase c = GetParam();
  storage::PageLayout layout;
  layout.page_size = c.page_size;
  storage::Table table("t", storage::Schema::Dense(c.features), layout);
  std::vector<double> row(c.features + 1);
  for (uint32_t r = 0; r < c.rows; ++r) {
    for (uint32_t i = 0; i <= c.features; ++i) {
      row[i] = r * 1000.0 + i;
    }
    ASSERT_TRUE(table.AppendRow(row).ok());
  }

  auto prog = BuildPageWalkProgram(layout);
  ASSERT_TRUE(prog.ok());
  StriderSim sim;

  uint64_t extracted = 0;
  for (uint64_t p = 0; p < table.num_pages(); ++p) {
    auto run = sim.Run(*prog, {table.PageData(p), layout.page_size});
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    const uint32_t expect = table.TuplesOnPage(p);
    ASSERT_EQ(run->tuples.size(), expect);
    for (uint32_t s = 0; s < expect; ++s) {
      // The emitted payload must match the schema codec byte-for-byte.
      storage::Page page(const_cast<uint8_t*>(table.PageData(p)), layout);
      auto payload = page.GetTuplePayload(s);
      ASSERT_TRUE(payload.ok());
      ASSERT_EQ(run->tuples[s].size(), payload->size());
      EXPECT_EQ(0, std::memcmp(run->tuples[s].data(), payload->data(),
                               payload->size()));
      ++extracted;
    }
  }
  EXPECT_EQ(extracted, c.rows);
}

INSTANTIATE_TEST_SUITE_P(
    LayoutSweep, PageWalkTest,
    ::testing::Values(WalkCase{8 * 1024, 4, 100},
                      WalkCase{8 * 1024, 54, 500},
                      WalkCase{16 * 1024, 54, 500},
                      WalkCase{32 * 1024, 54, 500},
                      WalkCase{32 * 1024, 520, 100},
                      WalkCase{32 * 1024, 2000, 40},
                      WalkCase{32 * 1024, 1, 2000}));

TEST(PageWalkTest, EmptyPageEmitsNothing) {
  storage::PageLayout layout;
  layout.page_size = 8 * 1024;
  std::vector<uint8_t> buf(layout.page_size);
  storage::Page page(buf.data(), layout);
  page.InitEmpty();
  auto prog = BuildPageWalkProgram(layout);
  ASSERT_TRUE(prog.ok());
  StriderSim sim;
  auto run = sim.Run(*prog, buf);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->tuples.empty());
}

TEST(PageWalkTest, CycleEstimateTracksSimulation) {
  storage::PageLayout layout;
  storage::Table table("t", storage::Schema::Dense(54), layout);
  std::vector<double> row(55, 1.0);
  for (int r = 0; r < 500; ++r) ASSERT_TRUE(table.AppendRow(row).ok());
  auto prog = BuildPageWalkProgram(layout);
  ASSERT_TRUE(prog.ok());
  StriderSim sim;
  auto run = sim.Run(*prog, {table.PageData(0), layout.page_size});
  ASSERT_TRUE(run.ok());
  const uint64_t est = EstimatePageWalkCycles(layout, table.TuplesOnPage(0),
                                              55 * 4);
  const double ratio =
      static_cast<double>(run->cycles) / static_cast<double>(est);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(PageWalkTest, ProgramStoredIn22BitWords) {
  storage::PageLayout layout;
  auto prog = BuildPageWalkProgram(layout);
  ASSERT_TRUE(prog.ok());
  for (const auto& ins : prog->code) {
    EXPECT_LT(ins.Encode(), 1u << 22);
  }
  EXPECT_EQ(prog->EncodedBytes(), prog->code.size() * 3);
}

}  // namespace
}  // namespace dana::strider
