// Physical shared-pool residency suite (ctest label: sched_pool).
//
// PR 3 priced placement from a logical per-slot ledger
// (storage::CacheResidencyModel) because per-workload tables are generated
// at different scales and could not share one physical pool. The executor
// now owns one scale-normalized shared storage::BufferPool per slot — each
// workload's sweep covers WorkloadInstance::NormalizedPages logical pages,
// so tables meet in consistent paper-scale units — and the pool's
// per-table frame accounting is the ground truth dispatches are charged
// from. This suite pins:
//  - the normalization (paper-ratio-preserving, scale-free);
//  - agreement between pool and ledger on undisturbed sequences (the
//    ledger stays on as a cross-checked predictor);
//  - the divergence: clock-sweep eviction takes frames in hand order, the
//    ledger decays co-located tables proportionally — where they disagree
//    the executor charges the physical answer;
//  - the legacy flag (physical_pools = false) reproducing ledger pricing;
//  - bit-for-bit determinism across repeat runs (CI runs this label twice
//    and diffs the logs).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "ml/workloads.h"
#include "runtime/systems.h"
#include "sched/executor.h"
#include "storage/buffer_pool.h"
#include "storage/residency.h"

namespace dana::sched {
namespace {

/// Paper-scale pool ratio of a workload: table bytes over the paper's 8 GB
/// shared_buffers — what NormalizedPages must preserve in a shared pool.
double PaperRatio(const std::string& id) {
  const ml::Workload* w = ml::FindWorkload(id);
  EXPECT_NE(w, nullptr) << id;
  auto instance = runtime::WorkloadInstance::Create(*w);
  EXPECT_TRUE(instance.ok());
  return (*instance)->PoolSizeRatio();
}

TEST(NormalizedPagesTest, PreservesPaperRatiosScaleFree) {
  // The divergence fixtures below rely on these workloads partially
  // filling a shared pool; pin the regime (not exact values, which track
  // the generators).
  const double lrmf_small = PaperRatio("sn_lrmf");
  const double linear = PaperRatio("sn_linear");
  const double lrmf_big = PaperRatio("se_lrmf");
  EXPECT_GT(lrmf_small, 0.05);
  EXPECT_LT(lrmf_small, 0.5);
  EXPECT_GT(linear, 0.3);
  EXPECT_LT(linear, 0.8);
  EXPECT_GT(lrmf_big, 0.5);
  EXPECT_LT(lrmf_big, 1.0);
  // NormalizedPages is the ratio times the shared frame count, floored at
  // one page, at any resolution.
  const ml::Workload* w = ml::FindWorkload("sn_linear");
  ASSERT_NE(w, nullptr);
  auto instance = runtime::WorkloadInstance::Create(*w);
  ASSERT_TRUE(instance.ok());
  for (uint64_t frames : {64ull, 4096ull, 65536ull}) {
    const uint64_t pages = (*instance)->NormalizedPages(frames);
    EXPECT_NEAR(static_cast<double>(pages),
                (*instance)->PoolSizeRatio() * static_cast<double>(frames),
                1.0)
        << frames;
    EXPECT_GE(pages, 1u);
  }
  // A tiny workload still occupies at least one frame.
  const ml::Workload* tiny = ml::FindWorkload("wlan");
  ASSERT_NE(tiny, nullptr);
  auto tiny_instance = runtime::WorkloadInstance::Create(*tiny);
  ASSERT_TRUE(tiny_instance.ok());
  EXPECT_GE((*tiny_instance)->NormalizedPages(64), 1u);
}

TEST(PhysicalPoolTest, ChargesAndIntrospectionComeFromThePool) {
  DanaQueryExecutor executor;  // defaults: physical pools on
  // Fresh slot: the pool is empty, the charge is genuinely cold.
  auto cold = executor.Dispatch(QueryBatch::Single("wlan", 0, 0));
  ASSERT_TRUE(cold.ok());
  EXPECT_DOUBLE_EQ(cold->warm_fraction, 0.0);
  EXPECT_TRUE(cold->residency_modeled);
  // The run's sweep is physically visible: the workload's normalized
  // footprint resident, the pool's last_table names it.
  const ml::Workload* w = ml::FindWorkload("wlan");
  ASSERT_NE(w, nullptr);
  auto instance = runtime::WorkloadInstance::Create(*w);
  ASSERT_TRUE(instance.ok());
  const uint64_t pages = (*instance)->NormalizedPages(4096);
  storage::BufferPool* pool = executor.slot_pool(0);
  EXPECT_EQ(pool->resident_frames("wlan"), pages);
  EXPECT_EQ(pool->last_table(), "wlan");
  EXPECT_DOUBLE_EQ(executor.WarmFraction("wlan", 0), 1.0);
  // The warm repeat charges the measured warm endpoint, strictly faster.
  auto warm = executor.Dispatch(QueryBatch::Single("wlan", 1, 0));
  ASSERT_TRUE(warm.ok());
  EXPECT_DOUBLE_EQ(warm->warm_fraction, 1.0);
  EXPECT_LT(warm->service.nanos(), cold->service.nanos());
  // Other slots' pools are independent — still cold.
  EXPECT_DOUBLE_EQ(executor.WarmFraction("wlan", 1), 0.0);
  // ResetResidency clears the physical pools along with the ledger.
  executor.ResetResidency();
  EXPECT_DOUBLE_EQ(executor.WarmFraction("wlan", 0), 0.0);
  EXPECT_EQ(executor.slot_pool(0)->resident_frames(), 0u);
}

TEST(PhysicalPoolTest, LedgerPredictorAgreesOnUndisturbedSequences) {
  // With one table sweeping a slot, clock eviction and proportional decay
  // describe the same physics: the pool and the ledger must agree (up to
  // the pool's 1-frame quantization) — the predictor is trustworthy until
  // co-located tables diverge it.
  DanaQueryExecutor executor;
  for (int repeat = 0; repeat < 3; ++repeat) {
    ASSERT_TRUE(executor.Dispatch(QueryBatch::Single("se_lrmf", 0, 0)).ok());
    EXPECT_NEAR(executor.WarmFraction("se_lrmf", 0),
                executor.PredictedWarmFraction("se_lrmf", 0), 1e-3);
  }
}

/// Drives the three-table divergence on one slot and returns the executor:
/// small (sn_lrmf) then mid (sn_linear) fill the pool partially; big
/// (se_lrmf)'s sweep needs more than the free space, and the clock hand
/// takes the *small* table's frames first while the ledger spreads the
/// loss proportionally over both.
void DriveDivergence(DanaQueryExecutor& executor) {
  for (const char* id : {"sn_lrmf", "sn_linear", "se_lrmf"}) {
    auto cost = executor.Dispatch(QueryBatch::Single(id, 0, 0));
    ASSERT_TRUE(cost.ok()) << id;
  }
}

TEST(DivergenceTest, ExecutorChargesThePoolWhereTheLedgerIsWrong) {
  DanaQueryExecutor executor;
  DriveDivergence(executor);

  // The ledger decayed sn_lrmf and sn_linear by the same factor; the clock
  // hand evicted sn_lrmf's frames first. Both cannot be right.
  const double pool_small = executor.WarmFraction("sn_lrmf", 0);
  const double pool_mid = executor.WarmFraction("sn_linear", 0);
  const double ledger_small = executor.PredictedWarmFraction("sn_lrmf", 0);
  const double ledger_mid = executor.PredictedWarmFraction("sn_linear", 0);
  // Proportional decay: equal survival factors.
  EXPECT_NEAR(ledger_small, ledger_mid, 1e-9);
  EXPECT_GT(ledger_small, 0.0);
  // Hand order: the first-installed table lost strictly more.
  EXPECT_LT(pool_small, pool_mid);
  EXPECT_GT(std::abs(pool_small - ledger_small), 0.05);
  EXPECT_GT(std::abs(pool_mid - ledger_mid), 0.05);

  // The executor charges the physical answer, not the prediction: the next
  // dispatch's warm_fraction is the pool's, and its service interpolates
  // from that fraction (colder than the ledger claims for sn_lrmf).
  auto exec = executor.Begin(QueryBatch::Single("sn_linear", 1, 0));
  ASSERT_TRUE(exec.ok());
  EXPECT_DOUBLE_EQ((*exec)->warm_fraction(), pool_mid);
  EXPECT_NE((*exec)->warm_fraction(), ledger_mid);
}

TEST(DivergenceTest, LegacyFlagReproducesLedgerPricing) {
  // physical_pools = false is the PR 3/PR 4 executor: charges come from
  // the ledger, so the same sequence prices the divergent step differently.
  DanaQueryExecutor::Options legacy;
  legacy.physical_pools = false;
  DanaQueryExecutor ledger_priced(legacy);
  DriveDivergence(ledger_priced);
  EXPECT_DOUBLE_EQ(ledger_priced.WarmFraction("sn_lrmf", 0),
                   ledger_priced.PredictedWarmFraction("sn_lrmf", 0));
  EXPECT_DOUBLE_EQ(ledger_priced.WarmFraction("sn_linear", 0),
                   ledger_priced.PredictedWarmFraction("sn_linear", 0));

  DanaQueryExecutor physical;
  DriveDivergence(physical);
  EXPECT_NE(physical.WarmFraction("sn_lrmf", 0),
            ledger_priced.WarmFraction("sn_lrmf", 0));
}

TEST(DivergenceTest, RepeatRunsAreBitForBit) {
  // The property CI double-checks by diffing two -L sched_pool logs: the
  // physical pools must not introduce any run-to-run nondeterminism.
  auto run = [] {
    DanaQueryExecutor executor;
    DriveDivergence(executor);
    std::vector<double> out;
    for (const char* id : {"sn_lrmf", "sn_linear", "se_lrmf"}) {
      out.push_back(executor.WarmFraction(id, 0));
      auto cost = executor.Dispatch(QueryBatch::Single(id, 1, 0));
      EXPECT_TRUE(cost.ok());
      out.push_back(cost->warm_fraction);
      out.push_back(cost->service.nanos());
    }
    return out;
  };
  EXPECT_EQ(run(), run());
}

/// Property: over any random dispatch sequence, (1) every charged
/// warm_fraction equals the slot pool's resident share at dispatch time,
/// (2) per-table frames partition each pool, and (3) the ledger predictor
/// stays a valid fraction — it may disagree with the pool (that is the
/// point) but never leaves [0, 1].
TEST(DivergenceTest, PropertyChargesAlwaysMatchPoolState) {
  const std::vector<std::string> ids = {"sn_lrmf", "sn_linear", "se_lrmf"};
  DanaQueryExecutor executor;
  dana::Rng seq(0x9001);
  uint64_t next_query = 0;
  for (int step = 0; step < 24; ++step) {
    const std::string& id = ids[seq.UniformInt(ids.size())];
    const uint32_t slot = static_cast<uint32_t>(seq.UniformInt(2));
    const double expected = executor.WarmFraction(id, slot);
    auto cost = executor.Dispatch(QueryBatch::Single(id, next_query++, slot));
    ASSERT_TRUE(cost.ok());
    EXPECT_DOUBLE_EQ(cost->warm_fraction, expected);
    for (uint32_t s = 0; s < 2; ++s) {
      const storage::BufferPool* pool = executor.slot_pool(s);
      uint64_t per_table = 0;
      for (const std::string& t : ids) per_table += pool->resident_frames(t);
      EXPECT_EQ(per_table, pool->resident_frames());
      EXPECT_LE(pool->resident_frames(), pool->num_frames());
      for (const std::string& t : ids) {
        const double predicted = executor.PredictedWarmFraction(t, s);
        EXPECT_GE(predicted, 0.0);
        EXPECT_LE(predicted, 1.0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Multi-epoch slice fidelity (the oversized-table regression)
// ---------------------------------------------------------------------------

/// A multi-epoch run re-reads its table every epoch. For a fitting table
/// the second and later passes are pure hits — one sweep already tells the
/// whole story — but an OVERSIZED table (PoolSizeRatio > 1) wraps the
/// clock hand every pass: each extra sweep evicts and refaults, churning
/// co-located tables and the pool's turnover counters. The slice path used
/// to charge a single sweep per slice regardless of the epoch count,
/// understating that churn; it now sweeps min(epochs, 2) times — pass two
/// is the steady state, so two passes capture the wraparound without
/// paying the full epoch budget — in both the physical pool and the ledger
/// predictor. This pins the fix by replaying the exact sweep sequences on
/// bare pools: the executor's end state must match the two-pass replay and
/// must NOT match the old one-pass behavior.
TEST(MultiEpochSliceTest, OversizedTableChargesTheSteadyStateSweep) {
  const ml::Workload* small_w = ml::FindWorkload("sn_lrmf");
  const ml::Workload* big_w = ml::FindWorkload("se_logistic");
  ASSERT_NE(small_w, nullptr);
  ASSERT_NE(big_w, nullptr);
  auto big_instance = runtime::WorkloadInstance::Create(*big_w);
  ASSERT_TRUE(big_instance.ok());
  // Fixture preconditions: the big table overflows the pool and its run
  // spans enough epochs that the second sweep actually happens.
  ASSERT_GT((*big_instance)->PoolSizeRatio(), 1.0);
  ASSERT_GE(big_w->params.epochs, 2u);
  ASSERT_EQ(small_w->params.epochs, 1u);

  DanaQueryExecutor executor;
  ASSERT_TRUE(executor.Dispatch(QueryBatch::Single("sn_lrmf", 0, 0)).ok());
  ASSERT_TRUE(executor.Dispatch(QueryBatch::Single("se_logistic", 1, 0)).ok());
  const storage::BufferPool* pool = executor.slot_pool(0);

  // Replay the charged sweep sequence on a bare pool of the executor's
  // exact geometry: one pass of the small table (one epoch, one sweep),
  // two of the oversized one.
  auto small_instance = runtime::WorkloadInstance::Create(*small_w);
  ASSERT_TRUE(small_instance.ok());
  const uint64_t small_pages = (*small_instance)->NormalizedPages(4096);
  const uint64_t big_pages = (*big_instance)->NormalizedPages(4096);
  ASSERT_GT(big_pages, 4096u);

  storage::BufferPool two_pass =
      storage::BufferPool::SizedInFrames(4096, 32 * 1024, storage::DiskModel{});
  two_pass.ScanTable("sn_lrmf", small_pages);
  two_pass.ScanTable("se_logistic", big_pages);
  two_pass.ScanTable("se_logistic", big_pages);
  EXPECT_EQ(pool->version(), two_pass.version());
  EXPECT_EQ(pool->stats().misses, two_pass.stats().misses);
  EXPECT_EQ(pool->stats().evictions, two_pass.stats().evictions);
  EXPECT_EQ(pool->resident_frames("se_logistic"),
            two_pass.resident_frames("se_logistic"));
  EXPECT_EQ(pool->resident_frames("sn_lrmf"),
            two_pass.resident_frames("sn_lrmf"));

  // The pre-fix single sweep is observably different: the wraparound
  // pass's churn is missing from the turnover counters. (Per-table
  // residency alone cannot distinguish the two — the steady state parks
  // the same frames — which is why the divergence hid in multi-epoch
  // runs until the turnover was pinned.)
  storage::BufferPool one_pass =
      storage::BufferPool::SizedInFrames(4096, 32 * 1024, storage::DiskModel{});
  one_pass.ScanTable("sn_lrmf", small_pages);
  one_pass.ScanTable("se_logistic", big_pages);
  EXPECT_NE(pool->version(), one_pass.version());
  EXPECT_NE(pool->stats().misses, one_pass.stats().misses);
  EXPECT_EQ(pool->resident_frames("se_logistic"),
            one_pass.resident_frames("se_logistic"));

  // The predictor saw the same two passes: scanning the oversized table
  // leaves it at the post-run share on both sides of the cross-check.
  EXPECT_NEAR(executor.WarmFraction("se_logistic", 0),
              executor.PredictedWarmFraction("se_logistic", 0), 1e-3);
}

/// Fitting tables must be unaffected by the cap: their second pass is a
/// complete no-op (pure hits, no installs), so multi-epoch runs charge
/// exactly what single-epoch runs always did.
TEST(MultiEpochSliceTest, FittingTableSecondSweepIsANoOp) {
  const ml::Workload* w = ml::FindWorkload("sn_linear");
  ASSERT_NE(w, nullptr);
  auto instance = runtime::WorkloadInstance::Create(*w);
  ASSERT_TRUE(instance.ok());
  ASSERT_LT((*instance)->PoolSizeRatio(), 1.0);
  ASSERT_GE(w->params.epochs, 2u);

  DanaQueryExecutor executor;
  ASSERT_TRUE(executor.Dispatch(QueryBatch::Single("sn_linear", 0, 0)).ok());
  const storage::BufferPool* pool = executor.slot_pool(0);
  const uint64_t pages = (*instance)->NormalizedPages(4096);

  storage::BufferPool one_pass =
      storage::BufferPool::SizedInFrames(4096, 32 * 1024, storage::DiskModel{});
  one_pass.ScanTable("sn_linear", pages);
  EXPECT_EQ(pool->version(), one_pass.version());
  EXPECT_EQ(pool->resident_frames("sn_linear"),
            one_pass.resident_frames("sn_linear"));
  EXPECT_EQ(pool->stats().misses, one_pass.stats().misses);
  EXPECT_DOUBLE_EQ(executor.WarmFraction("sn_linear", 0), 1.0);
}

}  // namespace
}  // namespace dana::sched
