#include <gtest/gtest.h>

#include "common/random.h"
#include "common/result.h"
#include "common/sim_time.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table_printer.h"

namespace dana {
namespace {

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorFactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_EQ(Status::NotFound("missing").message(), "missing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::Corruption("bad page").ToString(),
            "Corruption: bad page");
}

TEST(StatusTest, ReturnNotOkPropagates) {
  auto fails = []() -> Status { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    DANA_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsIOError());
}

// ---------------------------------------------------------------------------
// Result
// ---------------------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto make = [](bool ok) -> Result<int> {
    if (ok) return 7;
    return Status::Internal("boom");
  };
  auto use = [&](bool ok) -> Result<int> {
    DANA_ASSIGN_OR_RETURN(int v, make(ok));
    return v + 1;
  };
  EXPECT_EQ(*use(true), 8);
  EXPECT_TRUE(use(false).status().IsInternal());
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).ValueOrDie();
  EXPECT_EQ(*p, 5);
}

// ---------------------------------------------------------------------------
// SimTime
// ---------------------------------------------------------------------------

TEST(SimTimeTest, FactoriesAndAccessors) {
  EXPECT_DOUBLE_EQ(SimTime::Seconds(2.5).millis(), 2500.0);
  EXPECT_DOUBLE_EQ(SimTime::Millis(1.0).micros(), 1000.0);
  EXPECT_DOUBLE_EQ(SimTime::Micros(1.0).nanos(), 1000.0);
  EXPECT_DOUBLE_EQ(SimTime::Zero().seconds(), 0.0);
}

TEST(SimTimeTest, CyclesAtFrequency) {
  // 150 cycles at 150 MHz == 1 us.
  EXPECT_DOUBLE_EQ(SimTime::Cycles(150, 150e6).micros(), 1.0);
}

TEST(SimTimeTest, Arithmetic) {
  SimTime a = SimTime::Millis(3);
  SimTime b = SimTime::Millis(1);
  EXPECT_DOUBLE_EQ((a + b).millis(), 4.0);
  EXPECT_DOUBLE_EQ((a - b).millis(), 2.0);
  EXPECT_DOUBLE_EQ((a * 2).millis(), 6.0);
  EXPECT_DOUBLE_EQ((a / 3).millis(), 1.0);
  EXPECT_DOUBLE_EQ(a / b, 3.0);
  EXPECT_LT(b, a);
  EXPECT_EQ(SimTime::Max(a, b), a);
  EXPECT_EQ(SimTime::Min(a, b), b);
}

TEST(SimTimeTest, ToStringPicksUnits) {
  EXPECT_EQ(SimTime::Nanos(5).ToString(), "5.0 ns");
  EXPECT_EQ(SimTime::Micros(12).ToString(), "12.000 us");
  EXPECT_EQ(SimTime::Millis(3.5).ToString(), "3.500 ms");
  EXPECT_EQ(SimTime::Seconds(1.25).ToString(), "1.250 s");
  EXPECT_EQ(SimTime::Seconds(3723).ToString(), "1h 2m 3s");
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.3);
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.02);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(StatsTest, GeoMean) {
  EXPECT_DOUBLE_EQ(GeoMean({4.0, 1.0}), 2.0);
  EXPECT_NEAR(GeoMean({1.0, 10.0, 100.0}), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(GeoMean({}), 0.0);
}

TEST(StatsTest, MeanStdDev) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
}

TEST(StatsTest, MinMax) {
  EXPECT_DOUBLE_EQ(Max({3, 1, 2}), 3.0);
  EXPECT_DOUBLE_EQ(Min({3, 1, 2}), 1.0);
}

// ---------------------------------------------------------------------------
// TablePrinter
// ---------------------------------------------------------------------------

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter tp({"name", "value"});
  tp.AddRow({"alpha", "1"});
  tp.AddRow({"b", "22"});
  const std::string s = tp.ToString();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter tp({"a", "b", "c"});
  tp.AddRow({"x"});
  EXPECT_NE(tp.ToString().find("| x |"), std::string::npos);
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Speedup(8.25), "8.2x");
}

}  // namespace
}  // namespace dana
