// Preemptible epoch-sliced execution suite (ctest label: sched_preempt).
//
// Three layers of the resumable-execution stack are pinned here:
//  - accel::Accelerator's segmented-run mode: any split of a training run
//    into epoch segments (chained through final_models checkpoints over an
//    undisturbed buffer pool) reproduces the unsegmented run's per-epoch
//    timings and final model bit for bit, with cold I/O paid only by the
//    segment that runs the first epoch;
//  - the executor slice ABI: DanaQueryExecutor's slice costs telescope to
//    the unsegmented Dispatch charge, and Resume re-prices the remainder
//    from the new slot's residency;
//  - the scheduler's preemptive path: priority classes, epoch-boundary
//    preemption with a bounded interactive latency, the batching window,
//    and bit-identity of the knobs-off path with the run-to-completion
//    scheduler.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "accel/accelerator.h"
#include "compiler/compiler.h"
#include "ml/algorithms.h"
#include "ml/datasets.h"
#include "ml/workloads.h"
#include "sched/executor.h"
#include "sched/scheduler.h"
#include "sched/workload_driver.h"
#include "storage/buffer_pool.h"

namespace dana {
namespace {

// ---------------------------------------------------------------------------
// Accelerator segmented-run mode
// ---------------------------------------------------------------------------

struct SegmentFixture {
  std::unique_ptr<storage::Table> table;
  std::unique_ptr<storage::BufferPool> pool;
  compiler::CompiledUdf udf;
  ml::AlgoParams params;
  ml::AlgoKind kind = ml::AlgoKind::kLinearRegression;

  static SegmentFixture Make(uint32_t epochs) {
    SegmentFixture f;
    f.params.dims = 8;
    f.params.rank = 4;
    f.params.merge_coef = 4;
    f.params.epochs = epochs;
    f.params.learning_rate = 0.3;
    ml::DatasetSpec spec;
    spec.kind = f.kind;
    spec.dims = f.params.dims;
    spec.rank = f.params.rank;
    spec.tuples = 512;
    ml::Dataset data = ml::GenerateDataset(spec);
    storage::PageLayout layout;
    f.table = std::move(ml::BuildTable("t", data, layout)).ValueOrDie();
    f.pool = std::make_unique<storage::BufferPool>(64ull << 20, 32 * 1024,
                                                   storage::DiskModel{});
    auto algo = std::move(ml::BuildAlgo(f.kind, f.params)).ValueOrDie();
    compiler::WorkloadShape shape;
    shape.num_tuples = f.table->num_tuples();
    shape.num_pages = f.table->num_pages();
    shape.tuples_per_page = f.table->TuplesOnPage(0);
    shape.tuple_payload_bytes = f.table->schema().RowBytes();
    compiler::UdfCompiler compiler{compiler::FpgaSpec{},
                                   compiler::HardwareGenerator::Options{}};
    f.udf = std::move(compiler.Compile(*algo, layout, shape)).ValueOrDie();
    return f;
  }

  /// Fresh cold pool (cleared frames, zeroed stats).
  void ResetPool() {
    pool->Clear();
    pool->ResetStats();
  }

  accel::RunReport Train(accel::RunOptions opt) {
    if (opt.initial_models.empty()) {
      opt.initial_models = {ml::InitialModel(kind, params)};
    }
    accel::Accelerator acc(udf);
    return std::move(acc.Train(*table, pool.get(), opt)).ValueOrDie();
  }
};

/// Runs the fixture's training split into the given segment sizes (0 size
/// = all remaining), chaining model checkpoints, without disturbing the
/// pool between segments. Returns the concatenated segment reports.
std::vector<accel::RunReport> RunSegments(SegmentFixture& f,
                                          const std::vector<uint32_t>& sizes) {
  std::vector<accel::RunReport> reports;
  std::vector<std::vector<float>> models = {
      ml::InitialModel(f.kind, f.params)};
  uint32_t done = 0;
  for (uint32_t size : sizes) {
    accel::RunOptions opt;
    opt.epoch_limit = size;
    opt.epochs_completed = done;
    opt.initial_models = models;
    accel::RunReport r = f.Train(opt);
    done = r.epochs_completed;
    models = r.final_models;
    reports.push_back(std::move(r));
    if (!reports.back().resumable) break;
  }
  return reports;
}

TEST(SegmentedRunTest, AnySplitReproducesTheUnsegmentedRun) {
  const uint32_t kEpochs = 8;
  SegmentFixture f = SegmentFixture::Make(kEpochs);

  f.ResetPool();
  accel::RunReport whole = f.Train({});
  ASSERT_EQ(whole.epochs_run, kEpochs);
  EXPECT_EQ(whole.epochs_completed, kEpochs);
  EXPECT_FALSE(whole.resumable);

  const std::vector<std::vector<uint32_t>> splits = {
      {1, 1, 1, 1, 1, 1, 1, 1},  // size 1
      {2, 2, 2, 2},              // size 2
      {7, 1},                    // k-1 then 1
      {3, 1, 4},                 // "random"
      {5, 0},                    // explicit remainder
  };
  for (const auto& split : splits) {
    f.ResetPool();
    std::vector<accel::RunReport> segments = RunSegments(f, split);

    // Per-epoch timings concatenate to the unsegmented run's bit for bit:
    // the first segment pays the cold I/O, every later segment runs warm.
    std::vector<accel::EpochBreakdown> epochs;
    dana::SimTime total;
    uint64_t tuples = 0;
    for (const accel::RunReport& r : segments) {
      epochs.insert(epochs.end(), r.epochs.begin(), r.epochs.end());
      total += r.total_time;
      tuples += r.tuples_processed;
    }
    ASSERT_EQ(epochs.size(), whole.epochs.size());
    for (size_t e = 0; e < epochs.size(); ++e) {
      EXPECT_EQ(epochs[e].wall.nanos(), whole.epochs[e].wall.nanos())
          << "epoch " << e;
      EXPECT_EQ(epochs[e].io.nanos(), whole.epochs[e].io.nanos())
          << "epoch " << e;
      EXPECT_EQ(epochs[e].engine.nanos(), whole.epochs[e].engine.nanos())
          << "epoch " << e;
    }
    EXPECT_NEAR(total.nanos(), whole.total_time.nanos(), 1.0);
    EXPECT_EQ(tuples, whole.tuples_processed);

    // The chained checkpoint ends at the identical model, bit for bit.
    const accel::RunReport& last = segments.back();
    EXPECT_EQ(last.epochs_completed, kEpochs);
    EXPECT_FALSE(last.resumable);
    ASSERT_EQ(last.final_models.size(), whole.final_models.size());
    for (size_t m = 0; m < whole.final_models.size(); ++m) {
      EXPECT_EQ(last.final_models[m], whole.final_models[m]);
    }
  }
}

TEST(SegmentedRunTest, ColdIoPaidOnlyInTheFirstSegment) {
  SegmentFixture f = SegmentFixture::Make(6);
  f.ResetPool();
  std::vector<accel::RunReport> segments = RunSegments(f, {2, 2, 2});
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_GT(segments[0].io_time.nanos(), 0.0);
  EXPECT_EQ(segments[1].io_time.nanos(), 0.0);
  EXPECT_EQ(segments[2].io_time.nanos(), 0.0);
  // The configuration FSM programs the design once, in the first segment.
  EXPECT_GT(segments[0].fpga_cycles, segments[1].fpga_cycles);
}

TEST(SegmentedRunTest, SegmentReportsBudgetAccounting) {
  SegmentFixture f = SegmentFixture::Make(5);
  f.ResetPool();
  accel::RunOptions opt;
  opt.epoch_limit = 3;
  opt.initial_models = {ml::InitialModel(f.kind, f.params)};
  accel::RunReport first = f.Train(opt);
  EXPECT_EQ(first.epochs_run, 3u);
  EXPECT_EQ(first.epochs_completed, 3u);
  EXPECT_TRUE(first.resumable);

  opt.epochs_completed = 3;
  opt.epoch_limit = 10;  // clamped to the remaining budget
  opt.initial_models = first.final_models;
  accel::RunReport rest = f.Train(opt);
  EXPECT_EQ(rest.epochs_run, 2u);
  EXPECT_EQ(rest.epochs_completed, 5u);
  EXPECT_FALSE(rest.resumable);

  // A segment past the budget runs nothing.
  opt.epochs_completed = 5;
  accel::RunReport none = f.Train(opt);
  EXPECT_EQ(none.epochs_run, 0u);
  EXPECT_FALSE(none.resumable);
}

// ---------------------------------------------------------------------------
// DanaQueryExecutor slice ABI
// ---------------------------------------------------------------------------

TEST(ExecutorSliceTest, SlicesTelescopeToTheDispatchCharge) {
  sched::DanaQueryExecutor executor;
  auto whole = executor.Dispatch(sched::QueryBatch::Single("wlan", 0, 0));
  ASSERT_TRUE(whole.ok());

  // A fresh cold machine again: slicing epoch by epoch must charge the
  // same total occupancy as the one-shot dispatch.
  executor.ResetResidency();
  auto exec = executor.Begin(sched::QueryBatch::Single("wlan", 1, 0));
  ASSERT_TRUE(exec.ok());
  const uint32_t total_epochs = (*exec)->total_epochs();
  ASSERT_GT(total_epochs, 1u);
  dana::SimTime sum;
  uint32_t slices = 0;
  while (!(*exec)->finished()) {
    auto slice = (*exec)->NextSlice(1);
    ASSERT_TRUE(slice.ok());
    EXPECT_EQ(slice->epochs, 1u);
    sum += slice->service;
    ++slices;
  }
  EXPECT_EQ(slices, total_epochs);
  EXPECT_NEAR(sum.nanos(), whole->service.nanos(), 1.0);

  // Draining an already-finished execution is a contract violation.
  EXPECT_TRUE((*exec)->NextSlice(1).status().IsFailedPrecondition());
}

TEST(ExecutorSliceTest, PeekNeverPerturbsAndMatchesSlices) {
  sched::DanaQueryExecutor executor;
  auto exec = executor.Begin(sched::QueryBatch::Single("wlan", 0, 0));
  ASSERT_TRUE(exec.ok());
  auto all = (*exec)->PeekService(0);
  auto again = (*exec)->PeekService(0);
  ASSERT_TRUE(all.ok() && again.ok());
  EXPECT_EQ(all->nanos(), again->nanos());
  auto first_two = (*exec)->PeekService(2);
  ASSERT_TRUE(first_two.ok());
  auto slice = (*exec)->NextSlice(2);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->service.nanos(), first_two->nanos());
  auto rest = (*exec)->PeekService(0);
  ASSERT_TRUE(rest.ok());
  EXPECT_NEAR(slice->service.nanos() + rest->nanos(), all->nanos(), 1.0);
}

TEST(ExecutorSliceTest, ResumeElsewhereIsColdSameSlotIsWarm) {
  sched::DanaQueryExecutor executor;
  auto exec = executor.Begin(sched::QueryBatch::Single("wlan", 0, 0));
  ASSERT_TRUE(exec.ok());
  auto slice = (*exec)->NextSlice(2);
  ASSERT_TRUE(slice.ok());
  ASSERT_TRUE((*exec)->Checkpoint().ok());

  // Undisturbed same-slot resume: the cost curve continues exactly.
  auto before = (*exec)->PeekService(0);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE((*exec)->Resume(0).ok());
  auto same = (*exec)->PeekService(0);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(same->nanos(), before->nanos());

  // Resuming on a never-used slot re-pays the cold transient: the
  // remainder is strictly more expensive than the warm continuation.
  ASSERT_TRUE((*exec)->Resume(1).ok());
  auto elsewhere = (*exec)->PeekService(0);
  ASSERT_TRUE(elsewhere.ok());
  EXPECT_GT(elsewhere->nanos(), same->nanos());
}

TEST(ExecutorSliceTest, SliceUpdatesResidencyPerSweep) {
  sched::DanaQueryExecutor executor;
  auto exec = executor.Begin(sched::QueryBatch::Single("wlan", 0, 0));
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(executor.WarmFraction("wlan", 0), 0.0);
  ASSERT_TRUE((*exec)->NextSlice(1).ok());
  // One epoch swept the whole table: the slot is warm for it now, so an
  // intervening query would find it and the resumed remainder stays warm
  // until something else evicts it.
  EXPECT_GT(executor.WarmFraction("wlan", 0), 0.0);
}

// ---------------------------------------------------------------------------
// Scheduler preemptive path (synthetic epoch-sliced executor)
// ---------------------------------------------------------------------------

/// Deterministic synthetic epoch-sliced execution: every epoch of `id`
/// costs shared_s + size * per_query_s seconds of slot occupancy, over
/// `epochs` epochs. Warmth is static unless pinned with SetWarm (Resume
/// never re-prices either way); pinned warmth marks the run
/// residency-modeled so the scheduler's cold-resume-loss tie-break sees
/// it.
class SlicedExecutor : public sched::QueryExecutor {
 public:
  void Set(const std::string& id, uint32_t epochs, double epoch_shared_s,
           double epoch_per_query_s, double estimate_s,
           double compile_s = 0.0) {
    specs_[id] = {epochs, epoch_shared_s, epoch_per_query_s, compile_s};
    estimates_[id] = dana::SimTime::Seconds(estimate_s);
  }

  /// Pins `id`'s warmth on `slot` (and marks its runs residency-modeled):
  /// the victim tie-break prices what a cold resume of it would forfeit.
  void SetWarm(const std::string& id, uint32_t slot, double fraction) {
    warmth_[{id, slot}] = fraction;
    modeled_.insert(id);
  }

  /// Pins the fully-warm estimate; EstimateAtWarmth then interpolates
  /// between Estimate() (cold) and this, like the Dana executor's own
  /// cold/warm pricing. Unset ids estimate warmth-blind.
  void SetWarmEstimate(const std::string& id, double estimate_s) {
    warm_estimates_[id] = dana::SimTime::Seconds(estimate_s);
  }

  double WarmFraction(const std::string& id, uint32_t slot) override {
    auto it = warmth_.find({id, slot});
    return it == warmth_.end() ? 0.0 : it->second;
  }

  Result<dana::SimTime> EstimateAtWarmth(const std::string& id,
                                         double warm_fraction) override {
    auto warm = warm_estimates_.find(id);
    if (warm == warm_estimates_.end()) return Estimate(id);
    DANA_ASSIGN_OR_RETURN(dana::SimTime cold, Estimate(id));
    return warm->second + (cold - warm->second) * (1.0 - warm_fraction);
  }

  Result<std::unique_ptr<sched::BatchExecution>> Begin(
      const sched::QueryBatch& batch) override {
    auto it = specs_.find(batch.workload_id);
    if (it == specs_.end()) return Status::NotFound(batch.workload_id);
    begun_.push_back(batch);
    return std::unique_ptr<sched::BatchExecution>(new Execution(
        batch, it->second, WarmFraction(batch.workload_id, batch.slot),
        modeled_.count(batch.workload_id) > 0));
  }

  Result<dana::SimTime> Estimate(const std::string& id) override {
    auto it = estimates_.find(id);
    if (it == estimates_.end()) return Status::NotFound(id);
    return it->second;
  }

  const std::vector<sched::QueryBatch>& begun() const { return begun_; }

 private:
  struct Spec {
    uint32_t epochs;
    double shared_s;
    double per_query_s;
    double compile_s;
  };

  class Execution : public sched::BatchExecution {
   public:
    Execution(sched::QueryBatch batch, Spec spec, double warm = 0.0,
              bool modeled = false)
        : BatchExecution(std::move(batch)),
          spec_(spec),
          warm_(warm),
          modeled_(modeled) {}

    uint32_t total_epochs() const override { return spec_.epochs; }
    uint32_t epochs_run() const override { return done_; }
    dana::SimTime compile_cost() const override {
      return dana::SimTime::Seconds(spec_.compile_s);
    }
    double warm_fraction() const override { return warm_; }
    bool residency_modeled() const override { return modeled_; }

    dana::SimTime EpochCost() const {
      return dana::SimTime::Seconds(
          spec_.shared_s + spec_.per_query_s * batch_.size());
    }

    Result<sched::SliceCost> NextSlice(uint32_t max_epochs) override {
      const uint32_t remaining = spec_.epochs - done_;
      if (remaining == 0) {
        return Status::FailedPrecondition("already finished");
      }
      const uint32_t n =
          max_epochs == 0 ? remaining : std::min(max_epochs, remaining);
      sched::SliceCost s;
      s.epochs = n;
      s.service = EpochCost() * static_cast<double>(n);
      s.shared = dana::SimTime::Seconds(spec_.shared_s) *
                 static_cast<double>(n);
      s.per_query = dana::SimTime::Seconds(spec_.per_query_s) *
                    static_cast<double>(n);
      done_ += n;
      s.finished = done_ == spec_.epochs;
      return s;
    }

    Result<dana::SimTime> PeekService(uint32_t epochs) const override {
      const uint32_t remaining = spec_.epochs - done_;
      const uint32_t n =
          epochs == 0 ? remaining : std::min(epochs, remaining);
      return EpochCost() * static_cast<double>(n);
    }

    Status Checkpoint() override { return Status::OK(); }
    Status Resume(uint32_t slot) override {
      batch_.slot = slot;
      return Status::OK();
    }

   private:
    Spec spec_;
    double warm_;
    bool modeled_;
    uint32_t done_ = 0;
  };

  std::map<std::string, Spec> specs_;
  std::map<std::string, dana::SimTime> estimates_;
  std::map<std::string, dana::SimTime> warm_estimates_;
  std::map<std::pair<std::string, uint32_t>, double> warmth_;
  std::set<std::string> modeled_;
  std::vector<sched::QueryBatch> begun_;
};

sched::QueryRequest Req(uint64_t id, const std::string& workload,
                        double arrival_s,
                        sched::QueryClass cls = sched::QueryClass::kBatch) {
  sched::QueryRequest r;
  r.id = id;
  r.workload_id = workload;
  r.arrival = dana::SimTime::Seconds(arrival_s);
  r.query_class = cls;
  return r;
}

TEST(PreemptionTest, InteractiveLatencyBoundedByQuantumPlusContextSwitch) {
  SlicedExecutor exec;
  exec.Set("training", /*epochs=*/100, /*shared=*/1.0, /*pq=*/0.0,
           /*estimate=*/100);
  exec.Set("lookup", /*epochs=*/1, /*shared=*/2.0, /*pq=*/0.0,
           /*estimate=*/2);
  std::vector<sched::QueryRequest> reqs = {
      Req(0, "training", 0),
      Req(1, "lookup", 10.5, sched::QueryClass::kInteractive)};
  sched::Scheduler sched({.slots = 1,
                          .policy = sched::Policy::kFcfs,
                          .preemption_quantum_epochs = 4,
                          .context_switch_cost = dana::SimTime::Seconds(0.5)},
                         &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->queries.size(), 2u);

  const sched::QueryStat* lookup = nullptr;
  const sched::QueryStat* training = nullptr;
  for (const sched::QueryStat& q : report->queries) {
    (q.id == 1 ? lookup : training) = &q;
  }
  ASSERT_NE(lookup, nullptr);
  ASSERT_NE(training, nullptr);

  // The arrival at t=10.5 preempts the run at its next 4-epoch boundary,
  // t=12, and the slot frees after the 0.5 s context switch.
  EXPECT_DOUBLE_EQ(lookup->start.seconds(), 12.5);
  EXPECT_DOUBLE_EQ(lookup->completion.seconds(), 14.5);
  // Latency bound: one quantum of epochs + context switch + own service.
  const double bound = 4 * 1.0 + 0.5 + 2.0;
  EXPECT_LE(lookup->Latency().seconds(), bound);

  // The preempted run resumed at 14.5 and finished its remaining 88
  // epochs; its service excludes the context switch, which is reported
  // separately.
  EXPECT_EQ(training->preemptions, 1u);
  EXPECT_DOUBLE_EQ(training->preempt_overhead.seconds(), 0.5);
  EXPECT_DOUBLE_EQ(training->service.seconds(), 100.0);
  EXPECT_DOUBLE_EQ(training->completion.seconds(), 102.5);
  EXPECT_EQ(report->preemptions, 1u);
  EXPECT_DOUBLE_EQ(report->preemption_overhead.seconds(), 0.5);
  EXPECT_DOUBLE_EQ(report->makespan.seconds(), 102.5);
}

TEST(PreemptionTest, LongestRemainingRunIsTheVictim) {
  SlicedExecutor exec;
  exec.Set("long", 100, 1.0, 0.0, 100);
  exec.Set("short_train", 20, 1.0, 0.0, 20);
  exec.Set("lookup", 1, 1.0, 0.0, 1);
  std::vector<sched::QueryRequest> reqs = {
      Req(0, "long", 0), Req(1, "short_train", 0),
      Req(2, "lookup", 5.5, sched::QueryClass::kInteractive)};
  sched::Scheduler sched({.slots = 2,
                          .policy = sched::Policy::kFcfs,
                          .preemption_quantum_epochs = 2,
                          .context_switch_cost = dana::SimTime::Zero()},
                         &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  const sched::QueryStat* longest = nullptr;
  for (const sched::QueryStat& q : report->queries) {
    if (q.id == 0) longest = &q;
  }
  ASSERT_NE(longest, nullptr);
  EXPECT_EQ(longest->preemptions, 1u);
  for (const sched::QueryStat& q : report->queries) {
    if (q.id == 1) {
      EXPECT_EQ(q.preemptions, 0u);
    }
  }
}

TEST(PreemptionTest, BoundarylessLongestRunYieldsToNextCandidate) {
  // The longest-remaining run (by completion time) has too few epochs
  // left for a quantum boundary; the next-longest run still offers one,
  // and the arming must fall through to it instead of giving up.
  SlicedExecutor exec;
  exec.Set("fat", /*epochs=*/2, /*shared=*/10.0, /*pq=*/0.0, 20);
  exec.Set("thin", /*epochs=*/12, /*shared=*/1.0, /*pq=*/0.0, 12);
  exec.Set("lookup", 1, 2.0, 0.0, 2);
  std::vector<sched::QueryRequest> reqs = {
      Req(0, "fat", 0), Req(1, "thin", 0),
      Req(2, "lookup", 1, sched::QueryClass::kInteractive)};
  sched::Scheduler sched({.slots = 2,
                          .policy = sched::Policy::kFcfs,
                          .preemption_quantum_epochs = 4,
                          .context_switch_cost = dana::SimTime::Zero()},
                         &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->preemptions, 1u);
  for (const sched::QueryStat& q : report->queries) {
    if (q.id == 2) {
      // Preempted "thin" at its first boundary (t=4), not at either run's
      // completion (t=12 / t=20).
      EXPECT_DOUBLE_EQ(q.start.seconds(), 4.0);
    }
    if (q.id == 1) {
      EXPECT_EQ(q.preemptions, 1u);
    }
    if (q.id == 0) {
      EXPECT_EQ(q.preemptions, 0u);
    }
  }
}

TEST(PreemptionTest, EqualRemainingTiesBreakByBoundaryDistance) {
  // Two batch runs finish at exactly t=10; the interactive arrival at
  // t=4.5 needs one preempted. "wide" (slot 0, dispatched at 0) has
  // already passed its t=4 boundary, so its next usable boundary is t=8;
  // "late" (slot 1, dispatched at 2) offers t=6. The old slot-index
  // tie-break checkpointed "wide" and made the lookup wait until t=8 while
  // the nearer boundary sat unused; the checkpoint-to-boundary tie-break
  // must take "late" at t=6.
  SlicedExecutor exec;
  exec.Set("wide", /*epochs=*/10, /*shared=*/1.0, /*pq=*/0.0, 10);
  exec.Set("late", /*epochs=*/8, /*shared=*/1.0, /*pq=*/0.0, 8);
  exec.Set("lookup", 1, 1.0, 0.0, 1);
  std::vector<sched::QueryRequest> reqs = {
      Req(0, "wide", 0), Req(1, "late", 2),
      Req(2, "lookup", 4.5, sched::QueryClass::kInteractive)};
  sched::Scheduler sched({.slots = 2,
                          .policy = sched::Policy::kFcfs,
                          .preemption_quantum_epochs = 4,
                          .context_switch_cost = dana::SimTime::Zero()},
                         &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->preemptions, 1u);
  for (const sched::QueryStat& q : report->queries) {
    if (q.id == 2) {
      EXPECT_DOUBLE_EQ(q.start.seconds(), 6.0);
    }
    if (q.id == 1) {
      EXPECT_EQ(q.preemptions, 1u);
    }
    if (q.id == 0) {
      EXPECT_EQ(q.preemptions, 0u);
    }
  }
}

TEST(PreemptionTest, FullTiesBreakByExpectedResidencyLoss) {
  // Identical runs on both slots: completions tie and both offer the same
  // boundary, so the victim choice comes down to expected cold-resume
  // residency loss — the extra service the executor prices at warmth 0
  // over each run's current warmth. Slot 0's table is 90% warm (a cold
  // resume forfeits 0.9 of the 6 s warm/cold spread), slot 1's only 10%:
  // the scheduler must checkpoint the run with less to lose, not default
  // to slot 0.
  SlicedExecutor exec;
  exec.Set("hotrun", /*epochs=*/12, /*shared=*/1.0, /*pq=*/0.0, 12);
  exec.Set("coldrun", /*epochs=*/12, /*shared=*/1.0, /*pq=*/0.0, 12);
  exec.Set("lookup", 1, 1.0, 0.0, 1);
  exec.SetWarm("hotrun", /*slot=*/0, 0.9);
  exec.SetWarm("coldrun", /*slot=*/1, 0.1);
  exec.SetWarmEstimate("hotrun", 6);
  exec.SetWarmEstimate("coldrun", 6);
  std::vector<sched::QueryRequest> reqs = {
      Req(0, "hotrun", 0), Req(1, "coldrun", 0),
      Req(2, "lookup", 1.5, sched::QueryClass::kInteractive)};
  sched::Scheduler sched({.slots = 2,
                          .policy = sched::Policy::kFcfs,
                          .preemption_quantum_epochs = 4,
                          .context_switch_cost = dana::SimTime::Zero()},
                         &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->preemptions, 1u);
  for (const sched::QueryStat& q : report->queries) {
    if (q.id == 0) {
      EXPECT_EQ(q.preemptions, 0u);  // the warm run survives
    }
    if (q.id == 1) {
      EXPECT_EQ(q.preemptions, 1u);
    }
    if (q.id == 2) {
      EXPECT_DOUBLE_EQ(q.start.seconds(), 4.0);
    }
  }
}

TEST(PreemptionTest, ResidencyLossWeighsTableSizeNotBareWarmth) {
  // A fully-warm *cheap* table forfeits less on a cold resume than a
  // barely-warm huge one: the loss metric is the executor-priced warm/cold
  // service spread at the victim's warmth, not the bare warm fraction.
  // "hotsmall" is 100% warm but re-streams in 0.2 s (loss 0.2 s);
  // "coldhuge" is only 30% warm but its cold resume costs 18 s more than
  // its current warmth — the scheduler must sacrifice hotsmall.
  SlicedExecutor exec;
  exec.Set("hotsmall", /*epochs=*/12, /*shared=*/1.0, /*pq=*/0.0, 4);
  exec.Set("coldhuge", /*epochs=*/12, /*shared=*/1.0, /*pq=*/0.0, 100);
  exec.Set("lookup", 1, 1.0, 0.0, 1);
  exec.SetWarm("hotsmall", /*slot=*/0, 1.0);
  exec.SetWarm("coldhuge", /*slot=*/1, 0.3);
  exec.SetWarmEstimate("hotsmall", 3.8);
  exec.SetWarmEstimate("coldhuge", 40);
  std::vector<sched::QueryRequest> reqs = {
      Req(0, "hotsmall", 0), Req(1, "coldhuge", 0),
      Req(2, "lookup", 1.5, sched::QueryClass::kInteractive)};
  sched::Scheduler sched({.slots = 2,
                          .policy = sched::Policy::kFcfs,
                          .preemption_quantum_epochs = 4,
                          .context_switch_cost = dana::SimTime::Zero()},
                         &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->preemptions, 1u);
  for (const sched::QueryStat& q : report->queries) {
    if (q.id == 0) {
      EXPECT_EQ(q.preemptions, 1u);  // warmest run, but cheapest to lose
    }
    if (q.id == 1) {
      EXPECT_EQ(q.preemptions, 0u);
    }
  }
}

TEST(PreemptionTest, ResumedRunKeepsItsGlobalBoundaryPhase) {
  // Quantum boundaries sit at global epoch indices of each run — multiples
  // of q counted from the run's own epoch 0, not from its latest
  // (re-)dispatch. One long training absorbs two preemptions: the first at
  // epoch 4 (t=4); after the lookup (2 s) it resumes at t=6, and the
  // second interactive arrival must cut it at global epoch 8 — t=10, four
  // *global* epochs on from the checkpoint — with the run's full 20-epoch
  // service preserved across the three segments.
  SlicedExecutor exec;
  exec.Set("training", /*epochs=*/20, /*shared=*/1.0, /*pq=*/0.0, 20);
  exec.Set("lookup", 1, 2.0, 0.0, 2);
  std::vector<sched::QueryRequest> reqs = {
      Req(0, "training", 0),
      Req(1, "lookup", 1.5, sched::QueryClass::kInteractive),
      Req(2, "lookup", 6.5, sched::QueryClass::kInteractive)};
  sched::Scheduler sched({.slots = 1,
                          .policy = sched::Policy::kFcfs,
                          .preemption_quantum_epochs = 4,
                          .context_switch_cost = dana::SimTime::Zero()},
                         &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->preemptions, 2u);
  for (const sched::QueryStat& q : report->queries) {
    if (q.id == 1) {
      EXPECT_DOUBLE_EQ(q.start.seconds(), 4.0);
    }
    if (q.id == 2) {
      EXPECT_DOUBLE_EQ(q.start.seconds(), 10.0);
    }
    if (q.id == 0) {
      EXPECT_EQ(q.preemptions, 2u);
      EXPECT_DOUBLE_EQ(q.service.seconds(), 20.0);
      EXPECT_DOUBLE_EQ(q.completion.seconds(), 24.0);
    }
  }
}

TEST(PreemptionTest, ExecutorOverridingNeitherDispatchNorBeginErrors) {
  // Dispatch and Begin are defaulted in terms of each other; a subclass
  // implementing neither must get a status, not a stack overflow.
  class NeitherExecutor : public sched::QueryExecutor {
   public:
    Result<dana::SimTime> Estimate(const std::string&) override {
      return dana::SimTime::Seconds(1);
    }
  };
  NeitherExecutor exec;
  EXPECT_TRUE(exec.Dispatch(sched::QueryBatch::Single("a"))
                  .status()
                  .IsUnimplemented());
  EXPECT_TRUE(exec.Begin(sched::QueryBatch::Single("a"))
                  .status()
                  .IsUnimplemented());
  // The guard resets: repeated calls keep reporting cleanly.
  EXPECT_TRUE(exec.Dispatch(sched::QueryBatch::Single("a"))
                  .status()
                  .IsUnimplemented());
}

TEST(BatchWindowTest, InteractiveArrivalPrefersAFreeSlotOverSeizingTheHold) {
  SlicedExecutor exec;
  exec.Set("train", 1, 10.0, 2.0, 12);
  exec.Set("lookup", 1, 1.0, 0.0, 1);
  // Two slots: the batch head holds slot 0 collecting riders; slot 1 is
  // idle. The interactive arrival must run on the free slot and leave the
  // hold (and its window) untouched.
  std::vector<sched::QueryRequest> reqs = {
      Req(0, "train", 0),
      Req(1, "lookup", 1, sched::QueryClass::kInteractive),
      Req(2, "train", 2)};
  sched::Scheduler sched({.slots = 2,
                          .policy = sched::Policy::kFcfs,
                          .max_batch = 2,
                          .batch_window = dana::SimTime::Seconds(6)},
                         &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->queries.size(), 3u);
  for (const sched::QueryStat& q : report->queries) {
    if (q.id == 1) {
      EXPECT_DOUBLE_EQ(q.start.seconds(), 1.0);
    }
    if (q.id == 0 || q.id == 2) {
      // The hold survived and filled at t=2: both trainings ride one
      // batch dispatched then, not re-windowed after the lookup.
      EXPECT_EQ(q.batch_size, 2u);
      EXPECT_DOUBLE_EQ(q.start.seconds(), 2.0);
    }
  }
}

TEST(PreemptionTest, NoInteractiveWaitersMeansNoPreemptions) {
  SlicedExecutor exec;
  exec.Set("a", 10, 1.0, 0.0, 10);
  exec.Set("b", 4, 1.0, 0.0, 4);
  std::vector<sched::QueryRequest> reqs;
  for (int i = 0; i < 10; ++i) {
    reqs.push_back(Req(static_cast<uint64_t>(i), i % 2 ? "a" : "b", 1.5 * i));
  }
  sched::Scheduler sched({.slots = 2,
                          .policy = sched::Policy::kFcfs,
                          .preemption_quantum_epochs = 2,
                          .context_switch_cost = dana::SimTime::Seconds(1)},
                         &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->preemptions, 0u);
  EXPECT_DOUBLE_EQ(report->preemption_overhead.seconds(), 0.0);
}

TEST(PreemptionTest, EventDrivenPathWithNothingToPreemptMatchesLegacy) {
  // An all-batch stream under the event-driven path (quantum armed but no
  // interactive query ever waits) must reproduce the run-to-completion
  // schedule bit for bit: the preemptive machinery may not perturb
  // dispatch order, slot choice, or timing when it never fires.
  SlicedExecutor sliced;
  sliced.Set("x", 4, 1.0, 0.5, 6);
  sliced.Set("y", 8, 0.5, 0.25, 6);
  sched::DriverOptions opts;
  opts.num_queries = 60;
  opts.arrival_rate_qps = 0.4;
  sched::WorkloadDriver driver({"x", "y"}, opts);
  auto stream = driver.Generate();
  ASSERT_TRUE(stream.ok());
  for (sched::Policy policy :
       {sched::Policy::kFcfs, sched::Policy::kSjf,
        sched::Policy::kRoundRobin}) {
    auto off = sched::Scheduler({.slots = 2,
                                 .policy = policy,
                                 .max_batch = 2},
                                &sliced)
                   .Run(*stream);
    auto on = sched::Scheduler({.slots = 2,
                                .policy = policy,
                                .max_batch = 2,
                                .preemption_quantum_epochs = 3,
                                .context_switch_cost =
                                    dana::SimTime::Seconds(9)},
                               &sliced)
                  .Run(*stream);
    ASSERT_TRUE(off.ok() && on.ok());
    ASSERT_EQ(off->queries.size(), on->queries.size());
    for (size_t i = 0; i < off->queries.size(); ++i) {
      EXPECT_EQ(off->queries[i].id, on->queries[i].id);
      EXPECT_EQ(off->queries[i].slot, on->queries[i].slot);
      EXPECT_EQ(off->queries[i].start.nanos(), on->queries[i].start.nanos());
      EXPECT_EQ(off->queries[i].completion.nanos(),
                on->queries[i].completion.nanos());
    }
    EXPECT_EQ(on->preemptions, 0u);
  }
}

TEST(PreemptionTest, PreemptiveScheduleIsDeterministic) {
  sched::DriverOptions opts;
  opts.num_queries = 80;
  opts.arrival_rate_qps = 0.5;
  opts.interactive_ranks = 1;
  opts.zipf_exponent = 1.1;
  sched::WorkloadDriver driver({"hot", "mid", "tail"}, opts);
  auto stream = driver.Generate();
  ASSERT_TRUE(stream.ok());
  for (sched::Policy policy :
       {sched::Policy::kFcfs, sched::Policy::kSjf,
        sched::Policy::kRoundRobin}) {
    auto run = [&] {
      SlicedExecutor exec;
      exec.Set("hot", 1, 2.0, 0.5, 3);
      exec.Set("mid", 6, 1.5, 0.5, 10);
      exec.Set("tail", 20, 2.0, 0.5, 45);
      return sched::Scheduler(
                 {.slots = 2,
                  .policy = policy,
                  .max_batch = 2,
                  .preemption_quantum_epochs = 3,
                  .context_switch_cost = dana::SimTime::Seconds(0.2)},
                 &exec)
          .Run(*stream);
    };
    auto a = run();
    auto b = run();
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->queries.size(), b->queries.size());
    for (size_t i = 0; i < a->queries.size(); ++i) {
      EXPECT_EQ(a->queries[i].id, b->queries[i].id);
      EXPECT_EQ(a->queries[i].slot, b->queries[i].slot);
      EXPECT_EQ(a->queries[i].completion.nanos(),
                b->queries[i].completion.nanos());
      EXPECT_EQ(a->queries[i].preemptions, b->queries[i].preemptions);
    }
    EXPECT_EQ(a->preemptions, b->preemptions);
  }
}

TEST(PreemptionTest, ClosedLoopRejectsPreemptiveKnobs) {
  // The preemption quantum now composes with closed-loop sessions (the
  // run routes through the event-driven engine), so it must succeed where
  // it used to come back InvalidArgument. The batching window remains the
  // one open-stream-only knob: a held slot defers the completions sessions
  // submit from, so it still fails with an actionable Status naming the
  // offending option — never an abort — and the knobs-off run on the same
  // scheduler options must still work.
  SlicedExecutor exec;
  exec.Set("a", 2, 1.0, 0.0, 2);
  sched::Scheduler preemptive({.slots = 1,
                               .policy = sched::Policy::kFcfs,
                               .preemption_quantum_epochs = 1},
                              &exec);
  auto quantum_run = preemptive.RunClosedLoop({{"a"}}, dana::SimTime::Zero());
  ASSERT_TRUE(quantum_run.ok()) << quantum_run.status().ToString();
  EXPECT_EQ(quantum_run->queries.size(), 1u);

  sched::Scheduler windowed({.slots = 1,
                             .policy = sched::Policy::kFcfs,
                             .max_batch = 2,
                             .batch_window = dana::SimTime::Seconds(1)},
                            &exec);
  const Status window_err =
      windowed.RunClosedLoop({{"a"}}, dana::SimTime::Zero()).status();
  EXPECT_TRUE(window_err.IsInvalidArgument());
  EXPECT_NE(window_err.ToString().find("batch_window"), std::string::npos);

  sched::Scheduler plain({.slots = 1, .policy = sched::Policy::kFcfs}, &exec);
  EXPECT_TRUE(plain.RunClosedLoop({{"a"}}, dana::SimTime::Zero()).ok());
}

// ---------------------------------------------------------------------------
// Batching window
// ---------------------------------------------------------------------------

TEST(BatchWindowTest, HeldSlotCoalescesArrivalsUpToTheWindow) {
  SlicedExecutor exec;
  exec.Set("a", 1, 10.0, 2.0, 12);
  // q0 frees the slot at t=0 with nothing else queued: a windowless
  // scheduler dispatches it alone; the window holds the slot and q1, q2
  // (arriving inside the window) ride the same pass, dispatched the
  // moment the batch fills.
  std::vector<sched::QueryRequest> reqs = {Req(0, "a", 0), Req(1, "a", 2),
                                           Req(2, "a", 4)};
  sched::Scheduler sched({.slots = 1,
                          .policy = sched::Policy::kFcfs,
                          .max_batch = 3,
                          .batch_window = dana::SimTime::Seconds(5)},
                         &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->queries.size(), 3u);
  EXPECT_EQ(report->batches, 1u);
  for (const sched::QueryStat& q : report->queries) {
    EXPECT_EQ(q.batch_size, 3u);
    EXPECT_DOUBLE_EQ(q.start.seconds(), 4.0);
    // One epoch: 10 + 3 * 2 = 16 s of batched service.
    EXPECT_DOUBLE_EQ(q.completion.seconds(), 20.0);
  }
}

TEST(BatchWindowTest, ExpiredWindowDispatchesThePartialBatch) {
  SlicedExecutor exec;
  exec.Set("a", 1, 10.0, 2.0, 12);
  // The rider arrives past the window: the head dispatches alone at the
  // expiry, the rider dispatches behind it (then waits out the pass).
  std::vector<sched::QueryRequest> reqs = {Req(0, "a", 0), Req(1, "a", 9)};
  sched::Scheduler sched({.slots = 1,
                          .policy = sched::Policy::kFcfs,
                          .max_batch = 3,
                          .batch_window = dana::SimTime::Seconds(3)},
                         &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->queries.size(), 2u);
  EXPECT_EQ(report->queries[0].batch_size, 1u);
  EXPECT_DOUBLE_EQ(report->queries[0].start.seconds(), 3.0);
  EXPECT_DOUBLE_EQ(report->queries[0].completion.seconds(), 15.0);
}

TEST(BatchWindowTest, InteractiveArrivalSeizesTheHeldSlot) {
  SlicedExecutor exec;
  exec.Set("train", 1, 10.0, 2.0, 12);
  exec.Set("lookup", 1, 1.0, 0.0, 1);
  // The batch head's hold starts at t=0; the interactive arrival at t=1
  // takes the slot instead, and the head goes back to the queue.
  std::vector<sched::QueryRequest> reqs = {
      Req(0, "train", 0),
      Req(1, "lookup", 1, sched::QueryClass::kInteractive)};
  sched::Scheduler sched({.slots = 1,
                          .policy = sched::Policy::kFcfs,
                          .max_batch = 4,
                          .batch_window = dana::SimTime::Seconds(6)},
                         &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->queries.size(), 2u);
  EXPECT_EQ(report->queries[0].id, 1u);  // the lookup dispatched first
  EXPECT_DOUBLE_EQ(report->queries[0].start.seconds(), 1.0);
  EXPECT_DOUBLE_EQ(report->queries[0].completion.seconds(), 2.0);
  EXPECT_EQ(report->queries[1].id, 0u);
}

TEST(BatchWindowTest, ZeroWindowMatchesTheLegacySchedule) {
  SlicedExecutor exec;
  exec.Set("x", 2, 3.0, 1.0, 8);
  exec.Set("y", 3, 2.0, 0.5, 7);
  sched::DriverOptions opts;
  opts.num_queries = 50;
  opts.arrival_rate_qps = 0.3;
  sched::WorkloadDriver driver({"x", "y"}, opts);
  auto stream = driver.Generate();
  ASSERT_TRUE(stream.ok());
  auto legacy = sched::Scheduler({.slots = 2,
                                  .policy = sched::Policy::kFcfs,
                                  .max_batch = 3},
                                 &exec)
                    .Run(*stream);
  auto windowed = sched::Scheduler({.slots = 2,
                                    .policy = sched::Policy::kFcfs,
                                    .max_batch = 3,
                                    .batch_window = dana::SimTime::Zero()},
                                   &exec)
                      .Run(*stream);
  ASSERT_TRUE(legacy.ok() && windowed.ok());
  ASSERT_EQ(legacy->queries.size(), windowed->queries.size());
  for (size_t i = 0; i < legacy->queries.size(); ++i) {
    EXPECT_EQ(legacy->queries[i].id, windowed->queries[i].id);
    EXPECT_EQ(legacy->queries[i].completion.nanos(),
              windowed->queries[i].completion.nanos());
  }
}

// ---------------------------------------------------------------------------
// Per-class SLO accounting
// ---------------------------------------------------------------------------

TEST(SloAccountingTest, PerClassPercentilesSplitTheStream) {
  SlicedExecutor exec;
  exec.Set("train", 4, 2.5, 0.0, 10);
  exec.Set("lookup", 1, 1.0, 0.0, 1);
  std::vector<sched::QueryRequest> reqs = {
      Req(0, "train", 0), Req(1, "lookup", 1, sched::QueryClass::kInteractive),
      Req(2, "train", 2), Req(3, "lookup", 3, sched::QueryClass::kInteractive)};
  sched::Scheduler sched({.slots = 1,
                          .policy = sched::Policy::kFcfs,
                          .preemption_quantum_epochs = 1,
                          .context_switch_cost = dana::SimTime::Zero()},
                         &exec);
  auto report = sched.Run(reqs);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ClassQueries(sched::QueryClass::kInteractive), 2u);
  EXPECT_EQ(report->ClassQueries(sched::QueryClass::kBatch), 2u);
  EXPECT_LT(
      report->ClassLatencyPercentile(sched::QueryClass::kInteractive, 95)
          .seconds(),
      report->ClassLatencyPercentile(sched::QueryClass::kBatch, 95)
          .seconds());
  EXPECT_GT(report->ClassThroughputQps(sched::QueryClass::kBatch), 0.0);
}

}  // namespace
}  // namespace dana
