#include <gtest/gtest.h>

#include "dsl/algo.h"
#include "dsl/expr.h"
#include "hdfg/graph.h"
#include "hdfg/translator.h"

namespace dana {
namespace {

using dsl::Algo;
using dsl::Expr;
using dsl::OpKind;
using hdfg::Graph;
using hdfg::InferBinaryDims;
using hdfg::InferGroupDims;
using hdfg::Region;
using hdfg::Translator;

// ---------------------------------------------------------------------------
// DSL construction
// ---------------------------------------------------------------------------

TEST(DslTest, DeclarationsCarryKindAndDims) {
  Algo algo("a");
  auto mo = algo.Model("mo", {5, 2});
  EXPECT_EQ(mo->op(), OpKind::kVarRef);
  EXPECT_EQ(mo->var()->kind, dsl::VarKind::kModel);
  EXPECT_EQ(mo->var()->dims, (std::vector<uint32_t>{5, 2}));
  auto m = algo.Meta("lr", 0.25);
  EXPECT_DOUBLE_EQ(m->var()->meta_value, 0.25);
  EXPECT_EQ(algo.vars().size(), 2u);
}

TEST(DslTest, OperatorOverloadsBuildNodes) {
  Algo algo("a");
  auto x = algo.Input("x", {4});
  auto e = (x + 1.0) * 2.0 - x / x;
  EXPECT_EQ(e->op(), OpKind::kSub);
  EXPECT_EQ(e->inputs()[0]->op(), OpKind::kMul);
  EXPECT_EQ(e->inputs()[1]->op(), OpKind::kDiv);
  auto c = 1.0 < x;  // double op Expr
  EXPECT_EQ(c->op(), OpKind::kLt);
  EXPECT_EQ(c->inputs()[0]->op(), OpKind::kConst);
}

TEST(DslTest, NonLinearAndGroupBuilders) {
  Algo algo("a");
  auto x = algo.Input("x", {4});
  EXPECT_EQ(dsl::Sigmoid(x)->op(), OpKind::kSigmoid);
  EXPECT_EQ(dsl::Gaussian(x)->op(), OpKind::kGaussian);
  EXPECT_EQ(dsl::Sqrt(x)->op(), OpKind::kSqrt);
  auto s = dsl::Sigma(x, 0);
  EXPECT_EQ(s->op(), OpKind::kSigma);
  EXPECT_EQ(s->axis(), 0u);
  EXPECT_EQ(dsl::Pi(x, 0)->op(), OpKind::kPi);
  EXPECT_EQ(dsl::Norm(x, 0)->op(), OpKind::kNorm);
}

TEST(DslTest, MergeRecordsCoefficient) {
  Algo algo("a");
  auto x = algo.Input("x", {4});
  auto m = algo.Merge(x, 16, OpKind::kAdd);
  EXPECT_EQ(m->op(), OpKind::kMerge);
  EXPECT_EQ(m->merge_coef(), 16u);
  EXPECT_EQ(algo.MergeCoefficient(), 16u);
}

TEST(DslTest, SetModelRejectsNonModel) {
  Algo algo("a");
  auto x = algo.Input("x", {4});
  EXPECT_TRUE(algo.SetModel(x, x).IsInvalidArgument());
}

TEST(DslTest, SetModelRejectsDoubleBinding) {
  Algo algo("a");
  auto mo = algo.Model("mo", {4});
  ASSERT_TRUE(algo.SetModel(mo, mo + 1.0).ok());
  EXPECT_TRUE(algo.SetModel(mo, mo).IsAlreadyExists());
}

TEST(DslTest, ValidateRequiresModelUpdate) {
  Algo algo("a");
  algo.Model("mo", {4});
  EXPECT_TRUE(algo.Validate().IsFailedPrecondition());
}

TEST(DslTest, ValidateRejectsZeroDim) {
  Algo algo("a");
  auto mo = algo.Model("mo", {0});
  ASSERT_TRUE(algo.SetModel(mo, mo).ok());
  EXPECT_TRUE(algo.Validate().IsInvalidArgument());
}

TEST(DslTest, ValidateRejectsRank4) {
  Algo algo("a");
  auto mo = algo.Model("mo", {2, 2, 2, 2});
  ASSERT_TRUE(algo.SetModel(mo, mo).ok());
  EXPECT_TRUE(algo.Validate().IsUnimplemented());
}

// ---------------------------------------------------------------------------
// Dimension inference (paper §4.4 rules)
// ---------------------------------------------------------------------------

struct DimCase {
  std::vector<uint32_t> a, b, expect;
};

class InferBinaryTest : public ::testing::TestWithParam<DimCase> {};

TEST_P(InferBinaryTest, InfersDocumentedShape) {
  const auto& c = GetParam();
  auto r = InferBinaryDims(c.a, c.b);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, c.expect);
  // Broadcasting is symmetric in shape.
  auto r2 = InferBinaryDims(c.b, c.a);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(hdfg::NumElements(*r2), hdfg::NumElements(c.expect));
}

INSTANTIATE_TEST_SUITE_P(
    Rules, InferBinaryTest,
    ::testing::Values(
        DimCase{{10}, {10}, {10}},           // elementwise
        DimCase{{}, {7}, {7}},               // scalar broadcast
        DimCase{{5, 2}, {}, {5, 2}},         // scalar broadcast (rhs)
        DimCase{{10}, {5, 10}, {5, 10}},     // suffix replication
        DimCase{{5}, {5, 10}, {5, 10}},      // prefix replication
        DimCase{{5, 10}, {2, 10}, {5, 2, 10}},  // paper's cross join
        DimCase{{3}, {4}, {3, 4}}));         // vector outer product

TEST(InferBinaryTest, RejectsIncompatibleMatrices) {
  EXPECT_TRUE(InferBinaryDims({3, 4}, {5, 6}).status().IsInvalidArgument());
}

TEST(InferGroupTest, RemovesAxis) {
  auto r = InferGroupDims({5, 2, 10}, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<uint32_t>{5, 2}));
  auto v = InferGroupDims({10}, 0);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->empty());
}

TEST(InferGroupTest, RejectsBadAxisAndScalar) {
  EXPECT_TRUE(InferGroupDims({10}, 1).status().IsInvalidArgument());
  EXPECT_TRUE(InferGroupDims({}, 0).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Translator
// ---------------------------------------------------------------------------

std::unique_ptr<Algo> LinearRegression(uint32_t d, uint32_t coef) {
  auto algo = std::make_unique<Algo>("linearR");
  auto mo = algo->Model("mo", {d});
  auto in = algo->Input("in", {d});
  auto out = algo->Output("out");
  auto lr = algo->Meta("lr", 0.1);
  auto s = dsl::Sigma(mo * in, 0);
  auto grad = (s - out) * in;
  auto g = algo->Merge(grad, coef, OpKind::kAdd);
  EXPECT_TRUE(algo->SetModel(mo, mo - lr * g).ok());
  algo->SetEpochs(3);
  return algo;
}

TEST(TranslatorTest, LinearRegressionGraphShape) {
  auto algo = LinearRegression(10, 8);
  auto g = Translator::Translate(*algo);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->model_vars.size(), 1u);
  EXPECT_EQ(g->merge_coef, 8u);
  EXPECT_EQ(g->max_epochs, 3u);
  // The update root has the model's shape.
  EXPECT_EQ(g->node(g->update_roots[0]).dims, (std::vector<uint32_t>{10}));
}

TEST(TranslatorTest, RegionsSplitAtMergeBoundary) {
  auto algo = LinearRegression(10, 8);
  auto g = Translator::Translate(*algo);
  ASSERT_TRUE(g.ok());
  bool saw_tuple = false, saw_batch = false;
  for (const auto& n : g->nodes) {
    if (n.op == OpKind::kMerge) {
      EXPECT_EQ(n.region, Region::kPerBatch);
    } else if (n.op == OpKind::kSigma) {
      EXPECT_EQ(n.region, Region::kPerTuple);
      saw_tuple = true;
    } else if (n.op == OpKind::kSub && n.dims.size() == 1) {
      // mo - lr*g consumes the merged value: per batch.
      if (n.region == Region::kPerBatch) saw_batch = true;
    }
  }
  EXPECT_TRUE(saw_tuple);
  EXPECT_TRUE(saw_batch);
}

TEST(TranslatorTest, SharedSubExpressionsDeduplicated) {
  Algo algo("a");
  auto mo = algo.Model("mo", {4});
  auto in = algo.Input("in", {4});
  auto prod = mo * in;           // used twice below
  auto e = prod + prod;
  ASSERT_TRUE(algo.SetModel(mo, e).ok());
  auto g = Translator::Translate(algo);
  ASSERT_TRUE(g.ok());
  int muls = 0;
  for (const auto& n : g->nodes) {
    if (n.op == OpKind::kMul) ++muls;
  }
  EXPECT_EQ(muls, 1);  // the DAG shares the product node
}

TEST(TranslatorTest, ConvergenceRegionIsPerEpoch) {
  auto algo = std::make_unique<Algo>("c");
  auto mo = algo->Model("mo", {4});
  auto in = algo->Input("in", {4});
  auto out = algo->Output("out");
  auto grad = (dsl::Sigma(mo * in, 0) - out) * in;
  auto g = algo->Merge(grad, 4, OpKind::kAdd);
  ASSERT_TRUE(algo->SetModel(mo, mo - g).ok());
  auto cf = algo->Meta("cf", 0.01);
  algo->SetConvergence(dsl::Norm(g, 0) < cf);
  algo->SetEpochs(10);
  auto graph = Translator::Translate(*algo);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  ASSERT_NE(graph->convergence_root, hdfg::kInvalidNode);
  EXPECT_EQ(graph->node(graph->convergence_root).region, Region::kPerEpoch);
}

TEST(TranslatorTest, RejectsShapeMismatchedModelUpdate) {
  Algo algo("a");
  auto mo = algo.Model("mo", {4});
  auto in = algo.Input("in", {5});
  ASSERT_TRUE(algo.SetModel(mo, in).ok());  // shape checked at translate
  EXPECT_TRUE(Translator::Translate(algo).status().IsInvalidArgument());
}

TEST(TranslatorTest, RejectsNonScalarConvergence) {
  Algo algo("a");
  auto mo = algo.Model("mo", {4});
  ASSERT_TRUE(algo.SetModel(mo, mo).ok());
  algo.SetConvergence(mo > 0.0);  // vector condition
  EXPECT_TRUE(Translator::Translate(algo).status().IsInvalidArgument());
}

TEST(TranslatorTest, RejectsUnmergedUpdateWhenMergeExists) {
  // Model A goes through the merge boundary but model B consumes a raw
  // per-tuple value: with threads running in parallel, B's update is
  // ill-defined and must be rejected.
  Algo algo("a");
  auto ma = algo.Model("ma", {4});
  auto mb = algo.Model("mb", {4});
  auto in = algo.Input("in", {4});
  auto merged = algo.Merge(ma * in, 4, OpKind::kAdd);
  ASSERT_TRUE(algo.SetModel(ma, ma - merged).ok());
  ASSERT_TRUE(algo.SetModel(mb, mb - mb * in).ok());
  EXPECT_TRUE(Translator::Translate(algo).status().IsInvalidArgument());
}

TEST(TranslatorTest, RejectsBadGroupAxis) {
  Algo algo("a");
  auto mo = algo.Model("mo", {4});
  ASSERT_TRUE(algo.SetModel(mo, dsl::Sigma(mo, 3) * mo).ok());
  EXPECT_FALSE(Translator::Translate(algo).ok());
}

TEST(TranslatorTest, SubNodeCounts) {
  auto algo = LinearRegression(16, 1);
  auto g = Translator::Translate(*algo);
  ASSERT_TRUE(g.ok());
  for (hdfg::NodeId i = 0; i < g->nodes.size(); ++i) {
    const auto& n = g->node(i);
    if (n.op == OpKind::kMul && n.dims == std::vector<uint32_t>{16}) {
      EXPECT_EQ(g->SubNodeCount(i), 16u);
    }
    if (n.op == OpKind::kSigma) {
      EXPECT_EQ(g->SubNodeCount(i), 15u);  // 16 -> 1 tree reduction
    }
  }
  EXPECT_GT(g->TotalSubNodes(Region::kPerTuple), 0u);
}

TEST(TranslatorTest, GraphDumpMentionsUpdate) {
  auto algo = LinearRegression(4, 2);
  auto g = Translator::Translate(*algo);
  ASSERT_TRUE(g.ok());
  const std::string dump = g->ToString();
  EXPECT_NE(dump.find("update mo"), std::string::npos);
  EXPECT_NE(dump.find("merge"), std::string::npos);
}

}  // namespace
}  // namespace dana
