// Hot-path equivalence suite (ctest label: sched_perf).
//
// The scheduler's indexed queue structures (intrusive admission-order list
// with per-algorithm FIFO indices, the ordered pure-SJF candidate set, the
// incrementally maintained free-slot list) and the executor's slice
// memoization are pure performance work: SchedulerOptions::indexed_queues
// = false and DanaQueryExecutor::Options::memoize_slices = false keep the
// original linear-scan reference paths alive precisely so this suite can
// pin the optimized paths against them. Every test runs the same seeded
// stream down both paths and requires the *whole* outcome to match:
// per-query dispatch order, slot placement, and completion nanos, plus a
// byte-identical sched.* metric snapshot (MetricRegistry::ToJson().Dump()
// — counters, gauges, and latency/wait/batch histograms in one string).
// A tie-break drift that golden percentiles would round away fails here.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "sched/executor.h"
#include "sched/scheduler.h"
#include "sched/workload_driver.h"
#include "storage/buffer_pool.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace dana::sched {
namespace {

/// Deterministic synthetic epoch-sliced costs (the preempt_test shape):
/// one epoch of `id` occupies shared_s + size * per_query_s seconds, over
/// `epochs` epochs; run-to-completion dispatch goes through the same
/// Begin() via the default Dispatch. Warmth is pinnable per (id, slot) so
/// affinity placement and the cold-resume-loss tie-break have something to
/// read in both modes.
class PerfExecutor : public QueryExecutor {
 public:
  void Set(const std::string& id, uint32_t epochs, double epoch_shared_s,
           double epoch_per_query_s, double estimate_s,
           double compile_s = 0.0) {
    specs_[id] = {epochs, epoch_shared_s, epoch_per_query_s, compile_s};
    estimates_[id] = dana::SimTime::Seconds(estimate_s);
  }

  void SetWarm(const std::string& id, uint32_t slot, double fraction) {
    warmth_[{id, slot}] = fraction;
    modeled_.insert(id);
  }

  double WarmFraction(const std::string& id, uint32_t slot) override {
    auto it = warmth_.find({id, slot});
    return it == warmth_.end() ? 0.0 : it->second;
  }

  Result<std::unique_ptr<BatchExecution>> Begin(
      const QueryBatch& batch) override {
    auto it = specs_.find(batch.workload_id);
    if (it == specs_.end()) return Status::NotFound(batch.workload_id);
    return std::unique_ptr<BatchExecution>(new Execution(
        batch, it->second, WarmFraction(batch.workload_id, batch.slot),
        modeled_.count(batch.workload_id) > 0));
  }

  Result<dana::SimTime> Estimate(const std::string& id) override {
    auto it = estimates_.find(id);
    if (it == estimates_.end()) return Status::NotFound(id);
    return it->second;
  }

 private:
  struct Spec {
    uint32_t epochs;
    double shared_s;
    double per_query_s;
    double compile_s;
  };

  class Execution : public BatchExecution {
   public:
    Execution(QueryBatch batch, Spec spec, double warm, bool modeled)
        : BatchExecution(std::move(batch)),
          spec_(spec),
          warm_(warm),
          modeled_(modeled) {}

    uint32_t total_epochs() const override { return spec_.epochs; }
    uint32_t epochs_run() const override { return done_; }
    dana::SimTime compile_cost() const override {
      return dana::SimTime::Seconds(spec_.compile_s);
    }
    double warm_fraction() const override { return warm_; }
    bool residency_modeled() const override { return modeled_; }

    dana::SimTime EpochCost() const {
      return dana::SimTime::Seconds(
          spec_.shared_s + spec_.per_query_s * batch_.size());
    }

    Result<SliceCost> NextSlice(uint32_t max_epochs) override {
      const uint32_t remaining = spec_.epochs - done_;
      if (remaining == 0) {
        return Status::FailedPrecondition("already finished");
      }
      const uint32_t n =
          max_epochs == 0 ? remaining : std::min(max_epochs, remaining);
      SliceCost s;
      s.epochs = n;
      s.service = EpochCost() * static_cast<double>(n);
      s.shared = dana::SimTime::Seconds(spec_.shared_s) *
                 static_cast<double>(n);
      s.per_query = dana::SimTime::Seconds(spec_.per_query_s) *
                    static_cast<double>(n);
      done_ += n;
      s.finished = done_ == spec_.epochs;
      return s;
    }

    Result<dana::SimTime> PeekService(uint32_t epochs) const override {
      const uint32_t remaining = spec_.epochs - done_;
      const uint32_t n =
          epochs == 0 ? remaining : std::min(epochs, remaining);
      return EpochCost() * static_cast<double>(n);
    }

    Status Checkpoint() override { return Status::OK(); }
    Status Resume(uint32_t slot) override {
      batch_.slot = slot;
      return Status::OK();
    }

   private:
    Spec spec_;
    double warm_;
    bool modeled_;
    uint32_t done_ = 0;
  };

  std::map<std::string, Spec> specs_;
  std::map<std::string, dana::SimTime> estimates_;
  std::map<std::pair<std::string, uint32_t>, double> warmth_;
  std::set<std::string> modeled_;
};

/// Catalog sorted by estimate (WorkloadDriver ranks by catalog index for
/// popularity and interactive tagging): two short interactive-ish
/// algorithms, two mid, two long trainings.
PerfExecutor MakeExecutor() {
  PerfExecutor e;
  e.Set("lookup", 1, 1.5, 0.5, 2.0, 0.2);
  e.Set("score", 2, 1.0, 0.5, 3.0, 0.2);
  e.Set("logit", 4, 1.5, 0.5, 7.0, 0.5);
  e.Set("svm", 6, 1.5, 1.0, 11.0, 0.5);
  e.Set("train", 12, 2.0, 1.0, 26.0, 1.0);
  e.Set("lrmf", 20, 2.5, 1.0, 55.0, 1.0);
  // A little pre-pinned warmth so affinity slot choice and warm-candidate
  // preference are exercised from the first dispatch.
  e.SetWarm("logit", 1, 0.8);
  e.SetWarm("train", 0, 0.6);
  return e;
}

std::vector<QueryRequest> Stream(uint64_t seed, uint32_t queries,
                                 double rate_qps,
                                 uint32_t interactive_ranks = 0) {
  DriverOptions opts;
  opts.seed = seed;
  opts.num_queries = queries;
  opts.arrival_rate_qps = rate_qps;
  opts.popularity = Popularity::kZipfian;
  opts.zipf_exponent = 1.1;
  opts.interactive_ranks = interactive_ranks;
  WorkloadDriver driver({"lookup", "score", "logit", "svm", "train", "lrmf"},
                        opts);
  auto stream = driver.Generate();
  EXPECT_TRUE(stream.ok());
  return *stream;
}

struct RunOutcome {
  ScheduleReport report;
  std::string metrics_json;
};

RunOutcome RunWith(SchedulerOptions opts, bool indexed,
                   const std::vector<QueryRequest>& stream) {
  PerfExecutor exec = MakeExecutor();
  obs::MetricRegistry registry;
  opts.metrics = &registry;
  opts.indexed_queues = indexed;
  Scheduler scheduler(opts, &exec);
  auto report = scheduler.Run(stream);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return {std::move(*report), registry.ToJson().Dump()};
}

void ExpectIdenticalOutcomes(const RunOutcome& reference,
                             const RunOutcome& indexed,
                             const std::string& what) {
  ASSERT_EQ(reference.report.queries.size(), indexed.report.queries.size())
      << what;
  for (size_t i = 0; i < reference.report.queries.size(); ++i) {
    const QueryStat& a = reference.report.queries[i];
    const QueryStat& b = indexed.report.queries[i];
    EXPECT_EQ(a.id, b.id) << what << " position " << i;
    EXPECT_EQ(a.slot, b.slot) << what << " query " << a.id;
    EXPECT_EQ(a.completion.nanos(), b.completion.nanos())
        << what << " query " << a.id;
    EXPECT_EQ(a.start.nanos(), b.start.nanos())
        << what << " query " << a.id;
  }
  // One string carries every counter, gauge, and histogram percentile.
  EXPECT_EQ(reference.metrics_json, indexed.metrics_json) << what;
}

void ExpectEquivalence(SchedulerOptions opts,
                       const std::vector<QueryRequest>& stream,
                       const std::string& what) {
  ExpectIdenticalOutcomes(RunWith(opts, /*indexed=*/false, stream),
                          RunWith(opts, /*indexed=*/true, stream), what);
}

// ---------------------------------------------------------------------------
// Run-to-completion: all three policies, batched, overloaded queues
// ---------------------------------------------------------------------------

TEST(SchedPerfEquivalenceTest, RunToCompletionAllPolicies) {
  // ~2x overload on 2 slots so deep queues form: removal from the middle,
  // batch coalescing across the queue, and SJF extraction all get real
  // work in both modes.
  const auto stream = Stream(0xC0FFEE, 60, 0.25);
  for (Policy policy : {Policy::kFcfs, Policy::kSjf, Policy::kRoundRobin}) {
    ExpectEquivalence({.slots = 2, .policy = policy, .max_batch = 3},
                      stream, std::string("rtc/") + PolicyName(policy));
  }
}

TEST(SchedPerfEquivalenceTest, RunToCompletionAffinityAndAging) {
  // Aged SJF and affinity dispatch use the linear-scan candidate walk in
  // both modes — the equivalence must hold through the shared-path knobs
  // too (aging disables the ordered SJF set, affinity re-scores slots).
  const auto stream = Stream(0xBEEF, 48, 0.3);
  ExpectEquivalence({.slots = 3,
                     .policy = Policy::kSjf,
                     .max_batch = 2,
                     .sjf_aging_weight = 0.2,
                     .affinity_weight = 0.5},
                    stream, "rtc/sjf-aged-affinity");
  ExpectEquivalence({.slots = 3,
                     .policy = Policy::kFcfs,
                     .max_batch = 4,
                     .affinity_weight = 0.5},
                    stream, "rtc/fcfs-affinity");
}

// ---------------------------------------------------------------------------
// Preemptive: epoch slicing, priority classes, batching window
// ---------------------------------------------------------------------------

TEST(SchedPerfEquivalenceTest, PreemptiveAllPolicies) {
  // Two interactive ranks against long batch trainings, quantum small
  // enough that preemptions and resumes actually happen; the free-slot
  // list (indexed) vs the per-dispatch slot scan (reference) must agree on
  // every event.
  const auto stream = Stream(0x5EED, 48, 0.3, /*interactive_ranks=*/2);
  for (Policy policy : {Policy::kFcfs, Policy::kSjf, Policy::kRoundRobin}) {
    ExpectEquivalence({.slots = 2,
                       .policy = policy,
                       .max_batch = 3,
                       .affinity_weight = 0.5,
                       .preemption_quantum_epochs = 3,
                       .context_switch_cost = dana::SimTime::Millis(250)},
                      stream, std::string("preempt/") + PolicyName(policy));
  }
}

TEST(SchedPerfEquivalenceTest, PreemptiveBatchingWindow) {
  // Batch-formation holds park a freed slot: hold bookkeeping is the
  // subtlest free-slot-list client (a held slot is not free, an expired
  // hold is), so the window path gets its own pin.
  const auto stream = Stream(0xF00D, 40, 0.35, /*interactive_ranks=*/2);
  ExpectEquivalence({.slots = 2,
                     .policy = Policy::kFcfs,
                     .max_batch = 4,
                     .affinity_weight = 0.5,
                     .preemption_quantum_epochs = 4,
                     .context_switch_cost = dana::SimTime::Millis(100),
                     .batch_window = dana::SimTime::Seconds(3)},
                    stream, "preempt/window");
}

// ---------------------------------------------------------------------------
// Executor slice memoization: real DanaQueryExecutor, physical pools
// ---------------------------------------------------------------------------

TEST(SchedPerfEquivalenceTest, SliceMemoizationPreservesTheSchedule) {
  // The memoized path may only skip sweeps that would have been all-hits
  // no-ops: under a preemptive mixed workload on physical per-slot pools,
  // the schedule (and therefore every priced cost) must be bit-identical
  // with memoization on and off. Pool hit/miss counters legitimately
  // differ — the skipped sweeps are exactly the point — so the comparison
  // is the scheduler-side snapshot, not the executor gauges.
  DriverOptions dopts;
  dopts.seed = 0xDA7A;
  dopts.num_queries = 14;
  dopts.arrival_rate_qps = 0.02;
  dopts.popularity = Popularity::kZipfian;
  dopts.zipf_exponent = 1.2;
  dopts.interactive_ranks = 1;
  WorkloadDriver driver({"wlan", "sn_lrmf", "sn_linear"}, dopts);
  auto stream = driver.Generate();
  ASSERT_TRUE(stream.ok());

  auto run = [&](bool memoize) {
    DanaQueryExecutor::Options eopts;
    eopts.memoize_slices = memoize;
    DanaQueryExecutor executor(eopts);
    obs::MetricRegistry registry;
    Scheduler scheduler({.slots = 2,
                         .policy = Policy::kSjf,
                         .max_batch = 2,
                         .affinity_weight = 0.5,
                         .preemption_quantum_epochs = 2,
                         .context_switch_cost = dana::SimTime::Millis(50),
                         .metrics = &registry},
                        &executor);
    auto report = scheduler.Run(*stream);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return RunOutcome{std::move(*report), registry.ToJson().Dump()};
  };
  ExpectIdenticalOutcomes(run(false), run(true), "memoize");
}

TEST(SchedPerfEquivalenceTest, SliceMemoizationPreservesTheTieredSchedule) {
  // Same pin with the evicting OS tier configured: demotions, OS-tier
  // promotions, and the three-endpoint pricing all feed the memo key, so
  // the schedule must still be bit-identical with memoization on and off.
  DriverOptions dopts;
  dopts.seed = 0xDA7A;
  dopts.num_queries = 14;
  dopts.arrival_rate_qps = 0.02;
  dopts.popularity = Popularity::kZipfian;
  dopts.zipf_exponent = 1.2;
  dopts.interactive_ranks = 1;
  WorkloadDriver driver({"wlan", "sn_lrmf", "sn_linear"}, dopts);
  auto stream = driver.Generate();
  ASSERT_TRUE(stream.ok());

  auto run = [&](bool memoize) {
    DanaQueryExecutor::Options eopts;
    eopts.memoize_slices = memoize;
    eopts.eviction = storage::EvictionKind::kLru;
    eopts.os_frames = 4096;
    DanaQueryExecutor executor(eopts);
    obs::MetricRegistry registry;
    Scheduler scheduler({.slots = 2,
                         .policy = Policy::kSjf,
                         .max_batch = 2,
                         .affinity_weight = 0.5,
                         .preemption_quantum_epochs = 2,
                         .context_switch_cost = dana::SimTime::Millis(50),
                         .metrics = &registry},
                        &executor);
    auto report = scheduler.Run(*stream);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return RunOutcome{std::move(*report), registry.ToJson().Dump()};
  };
  ExpectIdenticalOutcomes(run(false), run(true), "memoize/tiered");
}

// ---------------------------------------------------------------------------
// OS-tier mutations vs slice memoization: version() is the contract
// ---------------------------------------------------------------------------

TEST(SliceMemoizationVersionTest, OsTierMutationsBumpPoolVersion) {
  // The memo's "undisturbed pool" check is two version() reads bracketing
  // the sweep, so an OS-tier reshape the sweep did not see must bump the
  // counter — otherwise memoize_slices serves a sweep priced against a
  // tier layout that no longer exists. A genuinely idempotent re-mark
  // (clock's admit-until-full set, already holding every page) must NOT
  // bump it: that is exactly the repeat the memo exists to skip.
  storage::PageLayout layout;
  layout.page_size = 8 * 1024;
  storage::Table table("t", storage::Schema::Dense(100), layout);
  std::vector<double> row(101, 1.0);
  while (table.num_pages() < 6) {
    ASSERT_TRUE(table.AppendRow(row).ok());
  }

  for (storage::EvictionKind kind :
       {storage::EvictionKind::kClock, storage::EvictionKind::kLru,
        storage::EvictionKind::kPromotional}) {
    auto pool = storage::BufferPool::SizedInFrames(
        4, 8 * 1024, storage::DiskModel{}, kind, /*os_frames=*/8);
    const uint64_t fresh = pool.version();
    pool.MarkOsCached(table);
    const uint64_t marked = pool.version();
    EXPECT_GT(marked, fresh) << storage::EvictionKindName(kind);
    pool.MarkOsCached(table);
    if (kind == storage::EvictionKind::kClock) {
      // Every page already admitted: nothing changed, nothing bumped.
      EXPECT_EQ(pool.version(), marked) << storage::EvictionKindName(kind);
    } else {
      // The evicting tiers re-reference every page, which reorders the
      // replacement queues — future victims differ, so it must count.
      EXPECT_GT(pool.version(), marked) << storage::EvictionKindName(kind);
    }
  }
}

}  // namespace
}  // namespace dana::sched
