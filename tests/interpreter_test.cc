#include <gtest/gtest.h>

#include <cmath>

#include "dsl/algo.h"
#include "hdfg/interpreter.h"
#include "hdfg/translator.h"

namespace dana::hdfg {
namespace {

using dsl::Algo;
using dsl::OpKind;

Tensor Vec(std::vector<double> v) {
  Tensor t;
  t.dims = {static_cast<uint32_t>(v.size())};
  t.data = std::move(v);
  return t;
}

// ---------------------------------------------------------------------------
// EvalBinary broadcasting
// ---------------------------------------------------------------------------

TEST(EvalBinaryTest, Elementwise) {
  Tensor out;
  ASSERT_TRUE(EvalBinary(OpKind::kAdd, Vec({1, 2}), Vec({10, 20}), {2}, &out)
                  .ok());
  EXPECT_EQ(out.data, (std::vector<double>{11, 22}));
}

TEST(EvalBinaryTest, ScalarBroadcast) {
  Tensor out;
  ASSERT_TRUE(EvalBinary(OpKind::kMul, Tensor::Scalar(3), Vec({1, 2, 3}),
                         {3}, &out)
                  .ok());
  EXPECT_EQ(out.data, (std::vector<double>{3, 6, 9}));
}

TEST(EvalBinaryTest, SuffixBroadcast) {
  // [k]=[2] against [d][k]=[2][2]: replicate along leading dim.
  Tensor big;
  big.dims = {2, 2};
  big.data = {1, 2, 3, 4};
  Tensor out;
  ASSERT_TRUE(
      EvalBinary(OpKind::kMul, Vec({10, 100}), big, {2, 2}, &out).ok());
  EXPECT_EQ(out.data, (std::vector<double>{10, 200, 30, 400}));
}

TEST(EvalBinaryTest, PrefixBroadcast) {
  // [d]=[2] against [d][k]=[2][3]: replicate along the trailing dim.
  // (With d == k the suffix rule takes precedence, so use d != k here.)
  Tensor a;
  a.dims = {2};
  a.data = {10, 100};
  Tensor big;
  big.dims = {2, 3};
  big.data = {1, 2, 3, 4, 5, 6};
  Tensor out;
  ASSERT_TRUE(EvalBinary(OpKind::kMul, big, a, {2, 3}, &out).ok());
  EXPECT_EQ(out.data, (std::vector<double>{10, 20, 30, 400, 500, 600}));
}

TEST(EvalBinaryTest, CrossJoinMatchesPaperExample) {
  // mo=[2][3], in=[2][3] would be elementwise; use [2][3] x [1][3]... the
  // paper case: [5][10] x [2][10] -> [5][2][10]. Miniature: [2][2] x [3][2].
  Tensor a, b, out;
  a.dims = {2, 2};
  a.data = {1, 2, 3, 4};
  b.dims = {3, 2};
  b.data = {10, 20, 30, 40, 50, 60};
  ASSERT_TRUE(EvalBinary(OpKind::kMul, a, b, {2, 3, 2}, &out).ok());
  ASSERT_EQ(out.data.size(), 12u);
  // out[i][j][t] = a[i][t] * b[j][t]
  EXPECT_DOUBLE_EQ(out.data[0], 1 * 10);   // i0 j0 t0
  EXPECT_DOUBLE_EQ(out.data[1], 2 * 20);   // i0 j0 t1
  EXPECT_DOUBLE_EQ(out.data[4], 1 * 50);   // i0 j2 t0
  EXPECT_DOUBLE_EQ(out.data[11], 4 * 60);  // i1 j2 t1
}

TEST(EvalBinaryTest, VectorOuterProduct) {
  Tensor out;
  ASSERT_TRUE(
      EvalBinary(OpKind::kMul, Vec({1, 2}), Vec({10, 20, 30}), {2, 3}, &out)
          .ok());
  EXPECT_EQ(out.data, (std::vector<double>{10, 20, 30, 20, 40, 60}));
}

TEST(EvalBinaryTest, ComparisonsProduceIndicators) {
  Tensor out;
  ASSERT_TRUE(EvalBinary(OpKind::kLt, Vec({1, 5}), Vec({3, 3}), {2}, &out)
                  .ok());
  EXPECT_EQ(out.data, (std::vector<double>{1, 0}));
  ASSERT_TRUE(EvalBinary(OpKind::kGt, Vec({1, 5}), Vec({3, 3}), {2}, &out)
                  .ok());
  EXPECT_EQ(out.data, (std::vector<double>{0, 1}));
}

// ---------------------------------------------------------------------------
// Full-graph interpretation
// ---------------------------------------------------------------------------

struct LinRegFixture {
  std::unique_ptr<Algo> algo;
  std::shared_ptr<dsl::Var> model_var;
  Graph graph;

  static LinRegFixture Make(uint32_t d, uint32_t coef, double lr) {
    LinRegFixture f;
    f.algo = std::make_unique<Algo>("lin");
    auto mo = f.algo->Model("mo", {d});
    auto in = f.algo->Input("in", {d});
    auto out = f.algo->Output("out");
    auto lrm = f.algo->Meta("lr", lr);
    auto grad = (dsl::Sigma(mo * in, 0) - out) * in;
    auto g = f.algo->Merge(grad, coef, OpKind::kAdd);
    EXPECT_TRUE(f.algo->SetModel(mo, mo - lrm * g).ok());
    f.model_var = mo->var();
    f.graph = std::move(Translator::Translate(*f.algo)).ValueOrDie();
    return f;
  }
};

TEST(InterpreterTest, SingleTupleGradientStepMatchesHandComputation) {
  auto f = LinRegFixture::Make(2, 1, 0.5);
  Interpreter interp(f.graph);
  interp.SetModelValue(f.model_var.get(), Vec({1.0, -1.0}));

  TupleBinding binding;
  binding[f.algo->vars()[1].get()] = Vec({2.0, 3.0});      // in
  binding[f.algo->vars()[2].get()] = Tensor::Scalar(4.0);  // out
  ASSERT_TRUE(interp.EvalBatch({&binding, 1}).ok());

  // s = 1*2 + (-1)*3 = -1; er = -5; grad = (-10, -15); w -= 0.5*grad.
  const Tensor& m = interp.ModelValue(f.model_var.get());
  EXPECT_DOUBLE_EQ(m.data[0], 6.0);
  EXPECT_DOUBLE_EQ(m.data[1], 6.5);
}

TEST(InterpreterTest, MergeSumsAcrossBatch) {
  auto f = LinRegFixture::Make(1, 2, 1.0);
  Interpreter interp(f.graph);
  interp.SetModelValue(f.model_var.get(), Vec({0.0}));

  TupleBinding t1, t2;
  t1[f.algo->vars()[1].get()] = Vec({1.0});
  t1[f.algo->vars()[2].get()] = Tensor::Scalar(2.0);  // grad = -2
  t2[f.algo->vars()[1].get()] = Vec({1.0});
  t2[f.algo->vars()[2].get()] = Tensor::Scalar(4.0);  // grad = -4
  std::vector<TupleBinding> batch = {t1, t2};
  ASSERT_TRUE(interp.EvalBatch(batch).ok());
  // merged grad = -6; w = 0 - 1.0 * (-6) = 6.
  EXPECT_DOUBLE_EQ(interp.ModelValue(f.model_var.get()).data[0], 6.0);
}

TEST(InterpreterTest, BatchOfOneEqualsSgdStep) {
  auto f1 = LinRegFixture::Make(3, 1, 0.1);
  auto f2 = LinRegFixture::Make(3, 1, 0.1);
  Interpreter a(f1.graph), b(f2.graph);

  TupleBinding bind1, bind2;
  bind1[f1.algo->vars()[1].get()] = Vec({1, 2, 3});
  bind1[f1.algo->vars()[2].get()] = Tensor::Scalar(1.0);
  bind2[f2.algo->vars()[1].get()] = Vec({1, 2, 3});
  bind2[f2.algo->vars()[2].get()] = Tensor::Scalar(1.0);

  ASSERT_TRUE(a.EvalBatch({&bind1, 1}).ok());
  ASSERT_TRUE(b.EvalBatch({&bind2, 1}).ok());
  EXPECT_EQ(a.ModelValue(f1.model_var.get()).data,
            b.ModelValue(f2.model_var.get()).data);
}

TEST(InterpreterTest, ZeroInitializedModelByDefault) {
  auto f = LinRegFixture::Make(4, 1, 0.1);
  Interpreter interp(f.graph);
  TupleBinding bind;
  bind[f.algo->vars()[1].get()] = Vec({0, 0, 0, 0});
  bind[f.algo->vars()[2].get()] = Tensor::Scalar(0.0);
  ASSERT_TRUE(interp.EvalBatch({&bind, 1}).ok());
  // Zero data, zero labels: the model stays zero.
  for (double v : interp.ModelValue(f.model_var.get()).data) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(InterpreterTest, MissingBindingIsError) {
  auto f = LinRegFixture::Make(2, 1, 0.1);
  Interpreter interp(f.graph);
  TupleBinding bind;  // empty: no input/output values
  EXPECT_FALSE(interp.EvalBatch({&bind, 1}).ok());
}

TEST(InterpreterTest, EmptyBatchIsError) {
  auto f = LinRegFixture::Make(2, 1, 0.1);
  Interpreter interp(f.graph);
  EXPECT_TRUE(interp.EvalBatch({}).IsInvalidArgument());
}

TEST(InterpreterTest, ConvergenceFiresWhenGradientSmall) {
  auto algo = std::make_unique<Algo>("c");
  auto mo = algo->Model("mo", {2});
  auto in = algo->Input("in", {2});
  auto out = algo->Output("out");
  auto grad = (dsl::Sigma(mo * in, 0) - out) * in;
  auto g = algo->Merge(grad, 1, OpKind::kAdd);
  ASSERT_TRUE(algo->SetModel(mo, mo - g).ok());
  auto cf = algo->Meta("cf", 0.5);
  algo->SetConvergence(dsl::Norm(g, 0) < cf);
  auto graph = std::move(Translator::Translate(*algo)).ValueOrDie();
  Interpreter interp(graph);

  TupleBinding bind;
  bind[algo->vars()[1].get()] = Vec({1.0, 0.0});
  bind[algo->vars()[2].get()] = Tensor::Scalar(3.0);
  // First step: grad = (-3, 0), |g| = 3 >= 0.5 -> keep going.
  ASSERT_TRUE(interp.EvalBatch({&bind, 1}).ok());
  EXPECT_FALSE(*interp.EvalConvergence());
  // Second step: model now predicts exactly; grad = 0 -> converged.
  ASSERT_TRUE(interp.EvalBatch({&bind, 1}).ok());
  EXPECT_TRUE(*interp.EvalConvergence());
}

TEST(InterpreterTest, NoConvergenceConditionNeverStops) {
  auto f = LinRegFixture::Make(2, 1, 0.1);
  Interpreter interp(f.graph);
  auto r = interp.EvalConvergence();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(InterpreterTest, NonLinearOps) {
  auto algo = std::make_unique<Algo>("n");
  auto mo = algo->Model("mo", {3});
  auto x = algo->Input("x", {3});
  ASSERT_TRUE(algo->SetModel(mo, dsl::Sigmoid(x) + dsl::Gaussian(x) +
                                      dsl::Sqrt(x * x)).ok());
  auto graph = std::move(Translator::Translate(*algo)).ValueOrDie();
  Interpreter interp(graph);
  TupleBinding bind;
  bind[algo->vars()[1].get()] = Vec({0.0, 1.0, 2.0});
  ASSERT_TRUE(interp.EvalBatch({&bind, 1}).ok());
  const auto& m = interp.ModelValue(mo->var().get()).data;
  EXPECT_NEAR(m[0], 0.5 + 1.0 + 0.0, 1e-12);
  EXPECT_NEAR(m[1], 1.0 / (1.0 + std::exp(-1.0)) + std::exp(-1.0) + 1.0,
              1e-12);
  EXPECT_NEAR(m[2], 1.0 / (1.0 + std::exp(-2.0)) + std::exp(-4.0) + 2.0,
              1e-12);
}

TEST(InterpreterTest, GroupOpsAlongAxes) {
  auto algo = std::make_unique<Algo>("g");
  auto mo = algo->Model("mo", {2});
  auto x = algo->Input("x", {3, 2});
  ASSERT_TRUE(algo->SetModel(mo, dsl::Sigma(x, 0)).ok());
  auto graph = std::move(Translator::Translate(*algo)).ValueOrDie();
  Interpreter interp(graph);
  TupleBinding bind;
  Tensor t;
  t.dims = {3, 2};
  t.data = {1, 2, 3, 4, 5, 6};
  bind[algo->vars()[1].get()] = t;
  ASSERT_TRUE(interp.EvalBatch({&bind, 1}).ok());
  EXPECT_EQ(interp.ModelValue(mo->var().get()).data,
            (std::vector<double>{9, 12}));
}

TEST(InterpreterTest, PiAndNormGroupOps) {
  auto algo = std::make_unique<Algo>("g2");
  auto mo = algo->Model("mo", {2});
  auto x = algo->Input("x", {4});
  auto p = dsl::Pi(x, 0);       // product
  auto n = dsl::Norm(x, 0);     // Euclidean norm
  ASSERT_TRUE(algo->SetModel(mo, (p * mo + n) * (mo > -1.0)).ok());
  auto graph = Translator::Translate(*algo);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  Interpreter interp(*graph);
  interp.SetModelValue(mo->var().get(), Vec({1.0, 2.0}));
  TupleBinding bind;
  bind[algo->vars()[1].get()] = Vec({1, 2, 2, 1});
  ASSERT_TRUE(interp.EvalBatch({&bind, 1}).ok());
  const auto& m = interp.ModelValue(mo->var().get()).data;
  // p = 4, n = sqrt(10); mo>-1 -> 1.
  EXPECT_NEAR(m[0], 4.0 * 1 + std::sqrt(10.0), 1e-12);
  EXPECT_NEAR(m[1], 4.0 * 2 + std::sqrt(10.0), 1e-12);
}

}  // namespace
}  // namespace dana::hdfg
