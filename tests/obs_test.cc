// Tests for the observability layer (src/obs/): deterministic JSON, the
// metric registry, the slot-timeline tracer, BENCH_*.json emission, and
// the bench_compare regression gate.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "obs/bench_compare.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/stats_writer.h"
#include "obs/trace.h"
#include "sched/executor.h"
#include "sched/scheduler.h"

namespace dana::obs {
namespace {

// ---------------------------------------------------------------------------
// Json: deterministic serialization + round-trip parse
// ---------------------------------------------------------------------------

TEST(JsonTest, DumpFormatsEveryType) {
  Json o = Json::Object();
  o.Set("null", Json());
  o.Set("yes", Json(true));
  o.Set("no", Json(false));
  o.Set("int", Json(42));
  o.Set("frac", Json(1.5));
  o.Set("str", Json("hi \"there\"\n"));
  Json arr = Json::Array();
  arr.Append(Json(1));
  arr.Append(Json(2));
  o.Set("arr", std::move(arr));
  EXPECT_EQ(o.Dump(),
            "{\"null\":null,\"yes\":true,\"no\":false,\"int\":42,"
            "\"frac\":1.5,\"str\":\"hi \\\"there\\\"\\n\","
            "\"arr\":[1,2]}");
}

TEST(JsonTest, FormatNumberIsDeterministicAndRoundTrips) {
  // Integral doubles print without a decimal point.
  EXPECT_EQ(Json::FormatNumber(0.0), "0");
  EXPECT_EQ(Json::FormatNumber(42.0), "42");
  EXPECT_EQ(Json::FormatNumber(-7.0), "-7");
  // Non-integral values use the shortest string that re-parses exactly.
  EXPECT_EQ(Json::FormatNumber(0.1), "0.1");
  EXPECT_EQ(Json::FormatNumber(1.0 / 3.0), "0.3333333333333333");
  // NaN / inf are not representable in JSON: serialized as null.
  EXPECT_EQ(Json::FormatNumber(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(Json::FormatNumber(std::numeric_limits<double>::infinity()),
            "null");
  // Shortest-round-trip really round-trips.
  for (double v : {3.141592653589793, 0.7311438609164169, 1e-9, 123456.789}) {
    auto parsed = Json::Parse(Json::FormatNumber(v));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->AsNumber(), v);
  }
}

TEST(JsonTest, ParseDumpRoundTrip) {
  const std::string doc =
      "{\"a\":1,\"b\":[true,false,null,\"x\\u00e9\"],\"c\":{\"d\":-2.5}}";
  auto parsed = Json::Parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // Member order is preserved, so dump(parse(x)) == x for compact input
  // (modulo unicode escapes, which decode to UTF-8).
  EXPECT_EQ(parsed->Dump(),
            "{\"a\":1,\"b\":[true,false,null,\"x\xc3\xa9\"],"
            "\"c\":{\"d\":-2.5}}");
  const Json* b = parsed->Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->size(), 4u);
  EXPECT_TRUE(b->at(2).is_null());
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(Json::Parse("[1,2").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(Json::Parse("nul").ok());
}

TEST(JsonTest, SetReplacesInPlacePreservingOrder) {
  Json o = Json::Object();
  o.Set("first", Json(1));
  o.Set("second", Json(2));
  o.Set("first", Json(10));  // overwrite keeps position
  EXPECT_EQ(o.Dump(), "{\"first\":10,\"second\":2}");
}

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

TEST(MetricRegistryTest, CountersGaugesHistograms) {
  MetricRegistry reg;
  reg.counter("c")->Increment();
  reg.counter("c")->Increment(2.5);
  EXPECT_DOUBLE_EQ(reg.counter("c")->value(), 3.5);
  reg.gauge("g")->Set(1.0);
  reg.gauge("g")->Set(7.0);  // last write wins
  EXPECT_DOUBLE_EQ(reg.gauge("g")->value(), 7.0);
  reg.histogram("h")->Record(1.0);
  reg.histogram("h")->Record(3.0);
  EXPECT_EQ(reg.histogram("h")->count(), 2u);
  EXPECT_DOUBLE_EQ(reg.histogram("h")->Mean(), 2.0);
  reg.Clear();
  EXPECT_DOUBLE_EQ(reg.counter("c")->value(), 0.0);
  EXPECT_EQ(reg.histogram("h")->count(), 0u);
}

TEST(MetricRegistryTest, NullSafeHelpersAreNoOpsOnNull) {
  Count(nullptr, "x");
  SetGauge(nullptr, "x", 1.0);
  Observe(nullptr, "x", 1.0);  // must not crash
  MetricRegistry reg;
  Count(&reg, "x", 2.0);
  SetGauge(&reg, "y", 3.0);
  Observe(&reg, "z", 4.0);
  EXPECT_DOUBLE_EQ(reg.counter("x")->value(), 2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("y")->value(), 3.0);
  EXPECT_EQ(reg.histogram("z")->count(), 1u);
}

TEST(MetricRegistryTest, HistogramPercentileAgreesWithStatsPercentile) {
  MetricRegistry reg;
  Histogram* h = reg.histogram("lat");
  std::vector<double> samples;
  // A deterministic awkward sequence (not sorted, repeated values).
  double v = 0.5;
  for (int i = 0; i < 257; ++i) {
    v = std::fmod(v * 997.0 + 1.0, 100.0);
    h->Record(v);
    samples.push_back(v);
  }
  for (double p : {0.0, 1.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h->Percentile(p), dana::Percentile(samples, p))
        << "p=" << p;
  }
  EXPECT_TRUE(std::isnan(reg.histogram("empty")->Percentile(50)));
}

// A two-workload fake: "short" costs 1 s, "long" costs 10 s, both always
// cold. Enough schedule structure (queueing, batching, a compile) to
// exercise every registry family.
class ObsFakeExecutor : public sched::QueryExecutor {
 public:
  Result<sched::BatchCost> Dispatch(const sched::QueryBatch& batch) override {
    sched::BatchCost cost;
    cost.shared = dana::SimTime::Seconds(0.5);
    cost.per_query = Service(batch.workload_id);
    cost.service = cost.shared +
                   cost.per_query * static_cast<double>(batch.size());
    if (!compiled_.count(batch.workload_id)) {
      compiled_.insert(batch.workload_id);
      cost.compile = dana::SimTime::Seconds(0.25);
    }
    cost.warm_fraction = 0.0;
    cost.residency_modeled = true;
    return cost;
  }
  Result<dana::SimTime> Estimate(const std::string& id) override {
    return Service(id);
  }
  Result<dana::SimTime> EstimateAtWarmth(const std::string& id,
                                         double) override {
    return Service(id);
  }
  double WarmFraction(const std::string&, uint32_t) override { return 0.0; }

 private:
  static dana::SimTime Service(const std::string& id) {
    return dana::SimTime::Seconds(id == "long" ? 10.0 : 1.0);
  }
  std::set<std::string> compiled_;
};

std::vector<sched::QueryRequest> ObsStream() {
  std::vector<sched::QueryRequest> stream;
  const char* ids[] = {"short", "long", "short", "short", "long", "short"};
  for (uint64_t i = 0; i < 6; ++i) {
    sched::QueryRequest r;
    r.id = i + 1;
    r.workload_id = ids[i];
    r.arrival = dana::SimTime::Seconds(static_cast<double>(i) * 0.5);
    stream.push_back(r);
  }
  return stream;
}

TEST(MetricRegistryTest, SnapshotIsByteIdenticalAcrossIdenticalRuns) {
  std::string dumps[2];
  for (int run = 0; run < 2; ++run) {
    ObsFakeExecutor exec;
    MetricRegistry reg;
    sched::Scheduler scheduler({.slots = 2,
                                .policy = sched::Policy::kSjf,
                                .max_batch = 2,
                                .metrics = &reg},
                               &exec);
    auto report = scheduler.Run(ObsStream());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    dumps[run] = reg.ToJson().Dump(2);
  }
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_FALSE(dumps[0].empty());
}

TEST(MetricRegistryTest, SchedulerPublishesTheMetricCatalog) {
  ObsFakeExecutor exec;
  MetricRegistry reg;
  sched::Scheduler scheduler(
      {.slots = 2, .policy = sched::Policy::kFcfs, .metrics = &reg}, &exec);
  auto report = scheduler.Run(ObsStream());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  Json snap = reg.ToJson();
  const Json* counters = snap.Find("counters");
  const Json* gauges = snap.Find("gauges");
  const Json* histograms = snap.Find("histograms");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(histograms, nullptr);
  // Counters mirror the report.
  EXPECT_DOUBLE_EQ(counters->Find("sched.queries")->AsNumber(), 6.0);
  EXPECT_DOUBLE_EQ(counters->Find("sched.compile.misses")->AsNumber(),
                   static_cast<double>(report->compile_misses));
  EXPECT_DOUBLE_EQ(counters->Find("sched.compile.hits")->AsNumber(),
                   static_cast<double>(report->compile_hits));
  // Gauges mirror the derived report stats.
  EXPECT_DOUBLE_EQ(gauges->Find("sched.throughput_qps")->AsNumber(),
                   report->ThroughputQps());
  EXPECT_DOUBLE_EQ(gauges->Find("sched.makespan_s")->AsNumber(),
                   report->makespan.seconds());
  // The latency histogram holds one sample per query and agrees with the
  // report's percentile math (both delegate to common/stats.h Percentile).
  const Json* lat = histograms->Find("sched.latency_s");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->Find("count")->AsNumber(), 6.0);
  EXPECT_DOUBLE_EQ(lat->Find("p95")->AsNumber(),
                   report->LatencyPercentile(95).seconds());
}

TEST(MetricRegistryTest, GoldenSnapshotForAFixedSchedule) {
  // A pinned end-to-end snapshot: 6 queries, 1 slot, FCFS, no batching.
  // Every number below is forced by the fake's cost model (0.5 s shared +
  // 1 s/10 s per query, 0.25 s first-compile), so a change here means the
  // scheduler's accounting — not just the obs layer — moved.
  ObsFakeExecutor exec;
  MetricRegistry reg;
  sched::Scheduler scheduler(
      {.slots = 1, .policy = sched::Policy::kFcfs, .metrics = &reg}, &exec);
  auto report = scheduler.Run(ObsStream());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  Json snap = reg.ToJson();
  const Json* counters = snap.Find("counters");
  const Json* gauges = snap.Find("gauges");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("sched.queries")->AsNumber(), 6.0);
  EXPECT_DOUBLE_EQ(counters->Find("sched.batches")->AsNumber(), 6.0);
  EXPECT_DOUBLE_EQ(counters->Find("sched.compile.misses")->AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(counters->Find("sched.compile.hits")->AsNumber(), 4.0);
  EXPECT_DOUBLE_EQ(counters->Find("sched.preemptions")->AsNumber(), 0.0);
  // Serial service: 6 * 0.5 shared + 4 * 1 + 2 * 10 private + 2 * 0.25
  // compile = 27.5 s busy from first arrival at t=0 -> makespan 27.5 s.
  EXPECT_DOUBLE_EQ(gauges->Find("sched.makespan_s")->AsNumber(), 27.5);
  EXPECT_DOUBLE_EQ(gauges->Find("sched.mean_batch_size")->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(gauges->Find("sched.warm_hit_rate")->AsNumber(), 0.0);
}

// ---------------------------------------------------------------------------
// SlotTracer
// ---------------------------------------------------------------------------

TEST(SlotTracerTest, EmitsWellFormedChromeTraceJson) {
  SlotTracer tracer;
  tracer.Span(0, "run w1", "dispatch", dana::SimTime::Seconds(1),
              dana::SimTime::Seconds(3), {{"queries", Json(uint64_t{2})}});
  tracer.Instant(1, "checkpoint w2", "preempt", dana::SimTime::Seconds(2.5));
  EXPECT_EQ(tracer.event_count(), 2u);

  Json doc = tracer.ToJson();
  const Json* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Metadata first: process name + one thread name per slot seen (0, 1),
  // then the two recorded events.
  ASSERT_EQ(events->size(), 5u);
  EXPECT_EQ(events->at(0).Find("ph")->AsString(), "M");
  // The recorded span: complete event with microsecond ts/dur on slot 0.
  const Json& span = events->at(3);
  EXPECT_EQ(span.Find("ph")->AsString(), "X");
  EXPECT_EQ(span.Find("name")->AsString(), "run w1");
  EXPECT_EQ(span.Find("cat")->AsString(), "dispatch");
  EXPECT_DOUBLE_EQ(span.Find("ts")->AsNumber(), 1e6);
  EXPECT_DOUBLE_EQ(span.Find("dur")->AsNumber(), 2e6);
  EXPECT_DOUBLE_EQ(span.Find("pid")->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(span.Find("tid")->AsNumber(), 0.0);
  EXPECT_DOUBLE_EQ(span.Find("args")->Find("queries")->AsNumber(), 2.0);
  // The instant event.
  const Json& inst = events->at(4);
  EXPECT_EQ(inst.Find("ph")->AsString(), "i");
  EXPECT_DOUBLE_EQ(inst.Find("ts")->AsNumber(), 2.5e6);
  EXPECT_DOUBLE_EQ(inst.Find("tid")->AsNumber(), 1.0);
  // The document round-trips through the parser (well-formed JSON).
  auto reparsed = Json::Parse(doc.Dump(2));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->Find("traceEvents")->size(), 5u);
}

TEST(SlotTracerTest, SchedulerEmitsSpansOnTheSimulatedClock) {
  ObsFakeExecutor exec;
  SlotTracer tracer;
  sched::Scheduler scheduler(
      {.slots = 2, .policy = sched::Policy::kFcfs, .tracer = &tracer}, &exec);
  auto report = scheduler.Run(ObsStream());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(tracer.event_count(), 0u);
  Json doc = tracer.ToJson();
  const Json* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  size_t spans = 0;
  for (const Json& e : events->items()) {
    if (e.Find("ph")->AsString() != "X") continue;
    ++spans;
    EXPECT_GE(e.Find("ts")->AsNumber(), 0.0);
    EXPECT_GE(e.Find("dur")->AsNumber(), 0.0);
    EXPECT_LT(e.Find("tid")->AsNumber(), 2.0);  // only slots 0 and 1 exist
  }
  // Every batch dispatch records a run span; the two compiles record
  // compile spans on top.
  EXPECT_GE(spans, 6u);
}

// ---------------------------------------------------------------------------
// StatsWriter (BENCH_*.json) + bench_compare
// ---------------------------------------------------------------------------

TEST(StatsWriterTest, EmitsTheDocumentedSchema) {
  StatsWriter w("sched");
  w.SetConfig("fast", Json(true));
  w.SetConfig("queries", Json(100));
  w.Add("p95_s", 1.5, Direction::kLowerIsBetter);
  w.Add("throughput_qps", 2.0, Direction::kHigherIsBetter);
  w.Add("wall_time_s", 10.0, Direction::kInfo);
  w.Add("p95_s", 1.25, Direction::kLowerIsBetter);  // overwrite, keeps slot
  EXPECT_EQ(w.metric_count(), 3u);
  Json doc = w.ToJson();
  EXPECT_EQ(doc.Find("bench")->AsString(), "sched");
  EXPECT_DOUBLE_EQ(doc.Find("schema_version")->AsNumber(), 1.0);
  EXPECT_TRUE(doc.Find("config")->Find("fast")->AsBool());
  const Json* m = doc.Find("metrics");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->members()[0].first, "p95_s");  // insertion order preserved
  EXPECT_DOUBLE_EQ(m->Find("p95_s")->Find("value")->AsNumber(), 1.25);
  EXPECT_EQ(m->Find("p95_s")->Find("better")->AsString(), "lower");
  EXPECT_EQ(m->Find("throughput_qps")->Find("better")->AsString(), "higher");
  EXPECT_EQ(m->Find("wall_time_s")->Find("better")->AsString(), "info");
  // The 3-arg Add carries no tolerance member; only the 4-arg overload does.
  EXPECT_EQ(m->Find("p95_s")->Find("tolerance"), nullptr);
}

TEST(StatsWriterTest, TolerantAddSerializesPerMetricTolerance) {
  StatsWriter w("micro");
  w.Add("sim_qps", 1e6, Direction::kHigherIsBetter, 0.75);
  Json doc = w.ToJson();
  const Json* entry = doc.Find("metrics")->Find("sim_qps");
  ASSERT_NE(entry, nullptr);
  EXPECT_DOUBLE_EQ(entry->Find("value")->AsNumber(), 1e6);
  EXPECT_EQ(entry->Find("better")->AsString(), "higher");
  ASSERT_NE(entry->Find("tolerance"), nullptr);
  EXPECT_DOUBLE_EQ(entry->Find("tolerance")->AsNumber(), 0.75);
}

// Builds a BENCH document from (name, value, direction) triples with a
// one-knob config.
Json Bench(std::vector<std::pair<std::string, std::pair<double, Direction>>>
               metrics,
           double knob = 1.0) {
  StatsWriter w("t");
  w.SetConfig("knob", Json(knob));
  for (const auto& [name, vd] : metrics) w.Add(name, vd.first, vd.second);
  return w.ToJson();
}

TEST(BenchCompareTest, WithinToleranceIsClean) {
  Json base = Bench({{"p95", {10.0, Direction::kLowerIsBetter}},
                     {"qps", {2.0, Direction::kHigherIsBetter}}});
  Json fresh = Bench({{"p95", {10.9, Direction::kLowerIsBetter}},
                      {"qps", {1.85, Direction::kHigherIsBetter}}});
  auto report = CompareBenchJson(base, fresh, 0.10);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->HasRegression());
  EXPECT_FALSE(report->deltas[0].regressed);
  EXPECT_FALSE(report->deltas[1].regressed);
}

TEST(BenchCompareTest, FlagsRegressionsInEitherDirection) {
  Json base = Bench({{"p95", {10.0, Direction::kLowerIsBetter}},
                     {"qps", {2.0, Direction::kHigherIsBetter}}});
  // p95 +15% (bad for "lower"), qps -15% (bad for "higher").
  Json fresh = Bench({{"p95", {11.5, Direction::kLowerIsBetter}},
                      {"qps", {1.7, Direction::kHigherIsBetter}}});
  auto report = CompareBenchJson(base, fresh, 0.10);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->HasRegression());
  EXPECT_TRUE(report->deltas[0].regressed);
  EXPECT_NEAR(report->deltas[0].relative_change, 0.15, 1e-12);
  EXPECT_TRUE(report->deltas[1].regressed);
  // A looser tolerance accepts the same numbers.
  auto loose = CompareBenchJson(base, fresh, 0.20);
  ASSERT_TRUE(loose.ok());
  EXPECT_FALSE(loose->HasRegression());
}

TEST(BenchCompareTest, BaselineTolerancePerMetricOverridesGlobal) {
  // A wall-clock scoreboard (tolerance 0.75 on its baseline entry) rides in
  // the same file as a strictly gated simulated metric: a -40% dip passes
  // the wide per-metric gate but the same dip on the strict metric fails
  // under the global tolerance.
  StatsWriter base_w("t");
  base_w.SetConfig("knob", Json(1.0));
  base_w.Add("sim_qps", 100.0, Direction::kHigherIsBetter, 0.75);
  base_w.Add("p95", 10.0, Direction::kLowerIsBetter);
  StatsWriter fresh_w("t");
  fresh_w.SetConfig("knob", Json(1.0));
  fresh_w.Add("sim_qps", 60.0, Direction::kHigherIsBetter, 0.75);
  fresh_w.Add("p95", 14.0, Direction::kLowerIsBetter);
  auto report = CompareBenchJson(base_w.ToJson(), fresh_w.ToJson(), 0.10);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->deltas[0].regressed);  // -40% within its own 0.75
  EXPECT_DOUBLE_EQ(report->deltas[0].tolerance, 0.75);
  EXPECT_TRUE(report->deltas[1].regressed);  // +40% past the global 0.10
  EXPECT_DOUBLE_EQ(report->deltas[1].tolerance, 0.10);
  // Past even the wide gate, the scoreboard still trips.
  StatsWriter collapsed_w("t");
  collapsed_w.SetConfig("knob", Json(1.0));
  collapsed_w.Add("sim_qps", 10.0, Direction::kHigherIsBetter, 0.75);
  collapsed_w.Add("p95", 10.0, Direction::kLowerIsBetter);
  auto collapse =
      CompareBenchJson(base_w.ToJson(), collapsed_w.ToJson(), 0.10);
  ASSERT_TRUE(collapse.ok());
  EXPECT_TRUE(collapse->deltas[0].regressed);
}

TEST(BenchCompareTest, ImprovementsAreReportedNotFailed) {
  Json base = Bench({{"p95", {10.0, Direction::kLowerIsBetter}}});
  Json fresh = Bench({{"p95", {5.0, Direction::kLowerIsBetter}}});
  auto report = CompareBenchJson(base, fresh, 0.10);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->HasRegression());
  EXPECT_TRUE(report->deltas[0].improved);
}

TEST(BenchCompareTest, InfoMetricsNeverGate) {
  Json base = Bench({{"wall", {10.0, Direction::kInfo}}});
  Json fresh = Bench({{"wall", {1000.0, Direction::kInfo}}});
  auto report = CompareBenchJson(base, fresh, 0.10);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->HasRegression());
}

TEST(BenchCompareTest, MissingBaselineMetricFails) {
  Json base = Bench({{"p95", {10.0, Direction::kLowerIsBetter}},
                     {"gone", {1.0, Direction::kInfo}}});
  Json fresh = Bench({{"p95", {10.0, Direction::kLowerIsBetter}},
                      {"brand_new", {5.0, Direction::kInfo}}});
  auto report = CompareBenchJson(base, fresh, 0.10);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->HasRegression());  // "gone" vanished
  EXPECT_TRUE(report->deltas[1].missing);
  // New fresh-only metrics are reported, not failed.
  ASSERT_EQ(report->new_metrics.size(), 1u);
  EXPECT_EQ(report->new_metrics[0], "brand_new");
}

TEST(BenchCompareTest, ConfigMismatchFailsOutright) {
  Json base = Bench({{"p95", {10.0, Direction::kLowerIsBetter}}}, 1.0);
  Json fresh = Bench({{"p95", {10.0, Direction::kLowerIsBetter}}}, 2.0);
  auto report = CompareBenchJson(base, fresh, 0.10);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->config_mismatch);
  EXPECT_TRUE(report->HasRegression());
  EXPECT_FALSE(report->config_diff.empty());
}

TEST(BenchCompareTest, ZeroBaselineHandledWithoutDividing) {
  Json base = Bench({{"errs", {0.0, Direction::kLowerIsBetter}}});
  Json same = Bench({{"errs", {0.0, Direction::kLowerIsBetter}}});
  Json worse = Bench({{"errs", {3.0, Direction::kLowerIsBetter}}});
  auto clean = CompareBenchJson(base, same, 0.10);
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean->HasRegression());
  auto bad = CompareBenchJson(base, worse, 0.10);
  ASSERT_TRUE(bad.ok());
  EXPECT_TRUE(bad->HasRegression());
  EXPECT_TRUE(std::isinf(bad->deltas[0].relative_change));
}

}  // namespace
}  // namespace dana::obs
