// bench_compare — CI regression gate over BENCH_*.json telemetry files.
//
// Compares a committed baseline against a freshly emitted file:
//
//   bench_compare --baseline bench/baselines/BENCH_sched.json
//                 --fresh build/BENCH_sched.json [--tolerance 0.10]
//
// Every baseline metric carries its own direction ("better": "lower" |
// "higher" | "info"), so the gate needs no out-of-band configuration: a
// "lower" metric more than --tolerance (relative) above its baseline is a
// regression, a "higher" one more than --tolerance below is, "info"
// metrics are reported but never gate. A baseline metric missing from the
// fresh file fails (silently dropped stats are how scoreboards rot), and
// differing "config" objects fail outright — the numbers are not
// comparable. Exit status: 0 clean, 1 regression, 2 usage/parse error.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/table_printer.h"
#include "obs/bench_compare.h"

namespace {

const char* Flag(int argc, char** argv, const char* name,
                 const char* fallback = nullptr) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

std::string PercentCell(double relative_change) {
  if (std::isinf(relative_change)) {
    return relative_change > 0 ? "+inf%" : "-inf%";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", relative_change * 100.0);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline = Flag(argc, argv, "--baseline");
  const char* fresh = Flag(argc, argv, "--fresh");
  const double tolerance =
      std::atof(Flag(argc, argv, "--tolerance", "0.10"));
  if (baseline == nullptr || fresh == nullptr || tolerance < 0) {
    std::fprintf(stderr,
                 "usage: bench_compare --baseline FILE --fresh FILE "
                 "[--tolerance T]\n"
                 "  T is the relative change allowed before a gated metric "
                 "fails (default 0.10)\n");
    return 2;
  }

  auto report = dana::obs::CompareBenchFiles(baseline, fresh, tolerance);
  if (!report.ok()) {
    std::fprintf(stderr, "bench_compare: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }

  if (report->config_mismatch) {
    std::fprintf(stderr,
                 "bench_compare: config mismatch — the files are not "
                 "comparable\n  %s\n",
                 report->config_diff.c_str());
    return 1;
  }

  dana::TablePrinter table(
      {"metric", "better", "baseline", "fresh", "change", "verdict"});
  for (const dana::obs::MetricDelta& d : report->deltas) {
    const char* verdict = d.missing      ? "MISSING"
                          : d.regressed  ? "REGRESSED"
                          : d.improved   ? "improved"
                          : d.direction == "info" ? "-"
                                                  : "ok";
    table.AddRow({d.name, d.direction,
                  dana::obs::Json::FormatNumber(d.baseline),
                  d.missing ? "-" : dana::obs::Json::FormatNumber(d.fresh),
                  d.missing ? "-" : PercentCell(d.relative_change),
                  verdict});
  }
  table.Print();
  for (const std::string& name : report->new_metrics) {
    std::printf("new metric (no baseline entry): %s — refresh the baseline "
                "to gate it\n",
                name.c_str());
  }

  if (report->HasRegression()) {
    std::fprintf(stderr,
                 "bench_compare: FAIL — at least one gated metric moved "
                 "more than %.0f%% the wrong way (or vanished)\n",
                 tolerance * 100.0);
    return 1;
  }
  std::printf("bench_compare: OK (tolerance %.0f%%)\n", tolerance * 100.0);
  return 0;
}
