// dana_lint — determinism & concurrency lint for the dana tree.
//
// A lexer-lite static checker (no compiler dependency) that enforces the
// repo's determinism contracts:
//
//   unordered-snapshot  no iteration over std::unordered_{map,set} in
//                       snapshot/report/serialization functions
//   unseeded-random     no raw PRNG/entropy outside common/random.h
//   wall-clock          no wall/monotonic clock reads outside bench timers
//   float-metric        no float accumulation into counters outside obs/
//
// Usage:
//   dana_lint [--json[=PATH]] [--list-rules] PATH...
//
// PATH may be a file or a directory (scanned recursively for .h/.hpp/.cc/
// .cpp). Findings print as `file:line: [rule] message`, one per line, to
// stderr. `--json` emits the machine-readable summary (schema_version,
// per-rule counts, findings) to stdout or PATH.
//
// Suppress a finding in place with `// dana-lint: allow(<rule>)` on the
// offending line or the line directly above it.
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#include <cstdio>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: dana_lint [--json[=PATH]] [--list-rules] PATH...\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  bool emit_json = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    }
    if (arg == "--list-rules") {
      for (const dana::lint::RuleInfo& rule : dana::lint::Rules()) {
        std::printf("%-20s %s\n", rule.id, rule.summary);
      }
      return 0;
    }
    if (arg == "--json") {
      emit_json = true;
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      emit_json = true;
      json_path = arg.substr(7);
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "dana_lint: unknown flag '%s'\n", arg.c_str());
      PrintUsage();
      return 2;
    }
    roots.push_back(std::move(arg));
  }
  if (roots.empty()) {
    PrintUsage();
    return 2;
  }

  dana::lint::TreeReport report = dana::lint::LintTree(roots);
  if (report.files_scanned == 0) {
    std::fprintf(stderr, "dana_lint: no source files found under given paths\n");
    return 2;
  }

  for (const dana::lint::Finding& f : report.findings) {
    std::fprintf(stderr, "%s:%u: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }

  if (emit_json) {
    dana::obs::Json doc = dana::lint::ReportJson(report);
    if (json_path.empty()) {
      std::printf("%s\n", doc.Dump(2).c_str());
    } else {
      dana::Status st = doc.WriteFile(json_path, 2);
      if (!st.ok()) {
        std::fprintf(stderr, "dana_lint: cannot write %s: %s\n",
                     json_path.c_str(), st.ToString().c_str());
        return 2;
      }
    }
  }

  std::fprintf(stderr, "dana_lint: scanned %zu files, %zu finding(s)\n",
               report.files_scanned, report.findings.size());
  return report.findings.empty() ? 0 : 1;
}
