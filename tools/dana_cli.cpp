// dana — command-line front end to the DAnA reproduction.
//
// Subcommands:
//   dana workloads
//       List the Table 3 workload suite with paper-vs-generated shapes.
//   dana compile --algo <linear|logistic|svm|lrmf> --dims D
//                [--rank K] [--merge M] [--save FILE]
//       Compile a UDF for a synthetic table of that shape, print the
//       utilization report, and optionally save the binary catalog blob.
//   dana inspect FILE
//       Load a catalog blob saved by `compile --save` and print its report
//       plus the disassembled Strider program.
//   dana strider-asm FILE
//       Assemble a Strider ISA text file; print the 22-bit words and the
//       round-tripped disassembly.
//   dana strider-walk --features N --rows N [--mysql]
//       Build a synthetic heap table, walk every page with the generated
//       Strider program, and report extraction statistics.
//   dana sched [options]
//       Generate a multi-query request stream (Zipfian or uniform) over the
//       Table 3 workloads and schedule it onto N simulated accelerator
//       slots; reports throughput and latency percentiles per policy.
//   dana --help
//       Detailed verb and option listing.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table_printer.h"
#include "compiler/report.h"
#include "compiler/serialization.h"
#include "ml/algorithms.h"
#include "ml/datasets.h"
#include "ml/workloads.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/systems.h"
#include "sched/executor.h"
#include "sched/scheduler.h"
#include "sched/workload_driver.h"
#include "strider/assembler.h"
#include "strider/codegen.h"
#include "strider/simulator.h"

using namespace dana;

namespace {

void PrintHelp(std::FILE* out) {
  std::fputs(
      "usage: dana <verb> [options]\n"
      "\n"
      "verbs:\n"
      "  workloads                 list the Table 3 workload suite\n"
      "  compile --algo <linear|logistic|svm|lrmf> --dims D\n"
      "          [--rank K] [--merge M] [--save FILE]\n"
      "                            compile a UDF and print the utilization\n"
      "                            report; optionally save the catalog blob\n"
      "  inspect FILE              print the report + disassembly of a blob\n"
      "                            saved by `compile --save`\n"
      "  strider-asm FILE          assemble a Strider ISA text file\n"
      "  strider-walk [--features N] [--rows N] [--mysql]\n"
      "                            walk a synthetic heap table with the\n"
      "                            generated Strider program\n"
      "  sched [--policy fcfs|sjf|rr|all] [--slots N] [--queries N]\n"
      "        [--rate QPS] [--dist zipf|uniform] [--theta S] [--seed N]\n"
      "        [--group public|sn|se|all] [--batch K] [--aging W]\n"
      "        [--affinity W] [--closed-loop] [--think-ms MS] [--sessions N]\n"
      "        [--interactive R] [--quantum E] [--ctx-ms MS] [--window-ms MS]\n"
      "        [--pool-frames F] [--eviction clock|lru|promotional]\n"
      "        [--os-frames F] [--metrics-json FILE] [--trace-out FILE]\n"
      "        [--metrics-table] [--runtime simulated|threaded]\n"
      "                            schedule a multi-query request stream\n"
      "                            onto N simulated accelerator slots;\n"
      "                            --batch K coalesces up to K same-algorithm\n"
      "                            queries into one accelerator pass, --aging\n"
      "                            sets the SJF starvation bonus, --affinity\n"
      "                            turns on slot-affinity placement (dispatch\n"
      "                            to the slot whose pool is warm for the\n"
      "                            query's table; SJF then orders by the\n"
      "                            residency-aware estimate), --closed-loop\n"
      "                            drives think-time sessions instead of an\n"
      "                            open Poisson stream. Slots charge real\n"
      "                            cache residency measured from one shared\n"
      "                            physical pool per slot of --pool-frames\n"
      "                            scale-normalized frames (default 4096):\n"
      "                            a slot's first run of a table is cold,\n"
      "                            repeats warm until another table's sweep\n"
      "                            evicts the frames; the phys-warm column\n"
      "                            reports the mean measured residency at\n"
      "                            dispatch. --pool-frames 0 selects the\n"
      "                            legacy logical-ledger pricing.\n"
      "                            Memory hierarchy: --eviction picks the\n"
      "                            pools' replacement policy (clock is the\n"
      "                            pinned legacy behaviour); --os-frames F\n"
      "                            adds a modeled OS page-cache tier of F\n"
      "                            frames below each slot pool (demoted\n"
      "                            pages re-read cheaper than disk; needs\n"
      "                            lru or promotional). The warm column\n"
      "                            then splits into pool/os shares.\n"
      "                            Priority classes & preemption:\n"
      "                            --interactive R tags the R hottest\n"
      "                            catalog ranks latency-sensitive; with\n"
      "                            --quantum E an interactive query waiting\n"
      "                            on a full machine preempts the longest\n"
      "                            batch run at its next E-epoch boundary\n"
      "                            (checkpointed model, resumed later),\n"
      "                            charging --ctx-ms per switch; --window-ms\n"
      "                            holds a freed slot to coalesce bigger\n"
      "                            batches before dispatching.\n"
      "                            Observability (single --policy only):\n"
      "                            --metrics-json FILE writes the run's\n"
      "                            metric-registry snapshot (bit-identical\n"
      "                            across identical runs), --trace-out FILE\n"
      "                            writes a Chrome trace_event slot timeline\n"
      "                            (chrome://tracing / Perfetto),\n"
      "                            --metrics-table prints the snapshot.\n"
      "                            --runtime threaded executes each slot on\n"
      "                            a real worker thread (same schedule as\n"
      "                            the simulated oracle, bit for bit)\n"
      "  help | --help | -h        this message\n",
      out);
}

int Usage() {
  PrintHelp(stderr);
  return 2;
}

const char* Flag(int argc, char** argv, const char* name,
                 const char* fallback = nullptr) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

int CmdWorkloads() {
  TablePrinter t({"id", "Workload", "Algorithm", "dims", "paper tuples",
                  "generated", "scale", "MADlib passes", "DAnA epochs"});
  for (const auto& w : ml::AllWorkloads()) {
    t.AddRow({w.id, w.display_name, ml::AlgoKindName(w.kind),
              std::to_string(w.params.dims), std::to_string(w.paper.tuples),
              std::to_string(w.tuples), TablePrinter::Fmt(w.scale, 1) + "x",
              std::to_string(w.assumed_epochs),
              std::to_string(w.dana_epochs)});
  }
  t.Print();
  return 0;
}

Result<ml::AlgoKind> ParseAlgo(const std::string& name) {
  if (name == "linear") return ml::AlgoKind::kLinearRegression;
  if (name == "logistic") return ml::AlgoKind::kLogisticRegression;
  if (name == "svm") return ml::AlgoKind::kSvm;
  if (name == "lrmf") return ml::AlgoKind::kLowRankMF;
  return Status::InvalidArgument("unknown algorithm '" + name + "'");
}

int CmdCompile(int argc, char** argv) {
  const char* algo_name = Flag(argc, argv, "--algo");
  const char* dims_s = Flag(argc, argv, "--dims");
  if (algo_name == nullptr || dims_s == nullptr) return Usage();
  auto kind = ParseAlgo(algo_name);
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 1;
  }
  ml::AlgoParams params;
  params.dims = static_cast<uint32_t>(std::atoi(dims_s));
  params.rank = static_cast<uint32_t>(
      std::atoi(Flag(argc, argv, "--rank", "10")));
  params.merge_coef = static_cast<uint32_t>(
      std::atoi(Flag(argc, argv, "--merge", "16")));
  params.learning_rate =
      *kind == ml::AlgoKind::kLowRankMF ? 0.5 : 0.3;

  auto algo = ml::BuildAlgo(*kind, params);
  if (!algo.ok()) {
    std::fprintf(stderr, "%s\n", algo.status().ToString().c_str());
    return 1;
  }

  storage::PageLayout layout;
  compiler::WorkloadShape shape;
  shape.tuple_payload_bytes =
      4 * (params.dims + (*kind == ml::AlgoKind::kLowRankMF ? 0 : 1));
  shape.tuples_per_page = layout.TuplesPerPage(shape.tuple_payload_bytes);
  shape.num_tuples = 100000;
  shape.num_pages =
      (shape.num_tuples + shape.tuples_per_page - 1) / shape.tuples_per_page;

  compiler::UdfCompiler udf_compiler{runtime::DefaultFpga()};
  auto udf = udf_compiler.Compile(**algo, layout, shape);
  if (!udf.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 udf.status().ToString().c_str());
    return 1;
  }
  std::fputs(compiler::UtilizationReport(*udf).c_str(), stdout);

  if (const char* save = Flag(argc, argv, "--save")) {
    const std::string blob = compiler::SerializeUdf(*udf);
    std::ofstream out(save, std::ios::binary);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", save);
      return 1;
    }
    std::printf("\nsaved %zu-byte catalog blob to %s\n", blob.size(), save);
  }
  return 0;
}

int CmdInspect(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::ifstream in(argv[2], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[2]);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto udf = compiler::DeserializeUdf(buf.str());
  if (!udf.ok()) {
    std::fprintf(stderr, "%s\n", udf.status().ToString().c_str());
    return 1;
  }
  std::fputs(compiler::UtilizationReport(*udf).c_str(), stdout);
  std::printf("\n--- Strider program ---\n%s",
              strider::Disassemble(udf->strider_program).c_str());
  return 0;
}

int CmdStriderAsm(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::ifstream in(argv[2]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[2]);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto prog = strider::Assemble(buf.str());
  if (!prog.ok()) {
    std::fprintf(stderr, "%s\n", prog.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu instructions (%llu bytes encoded)\n", prog->code.size(),
              static_cast<unsigned long long>(prog->EncodedBytes()));
  for (size_t i = 0; i < prog->code.size(); ++i) {
    std::printf("%3zu: 0x%06x  %s\n", i, prog->code[i].Encode(),
                prog->code[i].ToString().c_str());
  }
  return 0;
}

int CmdStriderWalk(int argc, char** argv) {
  const uint32_t features = static_cast<uint32_t>(
      std::atoi(Flag(argc, argv, "--features", "54")));
  const uint32_t rows =
      static_cast<uint32_t>(std::atoi(Flag(argc, argv, "--rows", "10000")));
  const storage::PageLayout layout = HasFlag(argc, argv, "--mysql")
                                         ? storage::PageLayout::MySqlLike()
                                         : storage::PageLayout::Postgres();

  ml::DatasetSpec spec;
  spec.dims = features;
  spec.tuples = rows;
  auto data = ml::GenerateDataset(spec);
  auto table = ml::BuildTable("walk", data, layout);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  auto prog = strider::BuildPageWalkProgram(layout);
  if (!prog.ok()) {
    std::fprintf(stderr, "%s\n", prog.status().ToString().c_str());
    return 1;
  }
  strider::StriderSim sim;
  uint64_t tuples = 0, cycles = 0;
  for (uint64_t p = 0; p < (*table)->num_pages(); ++p) {
    auto run = sim.Run(*prog, {(*table)->PageData(p), layout.page_size});
    if (!run.ok()) {
      std::fprintf(stderr, "page %llu: %s\n",
                   static_cast<unsigned long long>(p),
                   run.status().ToString().c_str());
      return 1;
    }
    tuples += run->tuples.size();
    cycles += run->cycles;
  }
  std::printf("layout: %s (header %u B, tuple header %u B, %u KB pages)\n",
              HasFlag(argc, argv, "--mysql") ? "MySQL-like" : "PostgreSQL",
              layout.header_size, layout.tuple_header_size,
              layout.page_size / 1024);
  std::printf("walked %llu pages, extracted %llu/%u tuples in %llu cycles "
              "(%.1f cycles/tuple; %.2f ms at 150 MHz)\n",
              static_cast<unsigned long long>((*table)->num_pages()),
              static_cast<unsigned long long>(tuples), rows,
              static_cast<unsigned long long>(cycles),
              tuples ? static_cast<double>(cycles) / tuples : 0.0,
              SimTime::Cycles(cycles, 150e6).millis());
  return tuples == rows ? 0 : 1;
}

int CmdSched(int argc, char** argv) {
  // Workload catalog (popularity rank = catalog order).
  const std::string group = Flag(argc, argv, "--group", "public");
  std::vector<ml::Workload> workloads;
  if (group == "public") {
    workloads = ml::PublicWorkloads();
  } else if (group == "sn") {
    workloads = ml::SyntheticNominalWorkloads();
  } else if (group == "se") {
    workloads = ml::SyntheticExtensiveWorkloads();
  } else if (group == "all") {
    workloads = ml::AllWorkloads();
  } else {
    std::fprintf(stderr, "unknown --group '%s' (want public|sn|se|all)\n",
                 group.c_str());
    return 2;
  }
  std::vector<std::string> catalog;
  for (const auto& w : workloads) catalog.push_back(w.id);

  // Parse counts as signed so "--slots -1" is rejected instead of wrapping
  // to a ~4-billion value through the unsigned cast.
  const int queries = std::atoi(Flag(argc, argv, "--queries", "100"));
  const int slots = std::atoi(Flag(argc, argv, "--slots", "2"));
  if (slots <= 0 || queries <= 0) {
    std::fprintf(stderr, "--slots and --queries must be positive\n");
    return 2;
  }
  if (slots > 4096) {
    std::fprintf(stderr, "--slots must be at most 4096\n");
    return 2;
  }
  const int max_batch = std::atoi(Flag(argc, argv, "--batch", "1"));
  if (max_batch <= 0 || max_batch > 1024) {
    std::fprintf(stderr, "--batch must be in 1..1024\n");
    return 2;
  }
  const double aging = std::atof(Flag(argc, argv, "--aging", "0"));
  if (aging < 0) {
    std::fprintf(stderr, "--aging must be non-negative\n");
    return 2;
  }
  const double affinity = std::atof(Flag(argc, argv, "--affinity", "0"));
  if (affinity < 0) {
    std::fprintf(stderr, "--affinity must be non-negative\n");
    return 2;
  }
  const bool closed_loop = HasFlag(argc, argv, "--closed-loop");
  const double think_ms = std::atof(Flag(argc, argv, "--think-ms", "0"));
  const int sessions = std::atoi(Flag(argc, argv, "--sessions", "4"));
  if (closed_loop && (think_ms < 0 || sessions <= 0)) {
    std::fprintf(stderr, "--think-ms must be >= 0 and --sessions positive\n");
    return 2;
  }
  const int interactive_ranks =
      std::atoi(Flag(argc, argv, "--interactive", "0"));
  const int quantum = std::atoi(Flag(argc, argv, "--quantum", "0"));
  const double ctx_ms = std::atof(Flag(argc, argv, "--ctx-ms", "50"));
  const double window_ms = std::atof(Flag(argc, argv, "--window-ms", "0"));
  if (interactive_ranks < 0 || quantum < 0 || ctx_ms < 0 || window_ms < 0) {
    std::fprintf(stderr, "--interactive, --quantum, --ctx-ms and "
                         "--window-ms must be non-negative\n");
    return 2;
  }
  if (closed_loop && window_ms > 0) {
    // --quantum composes with --closed-loop now (the event-driven engine
    // materializes think-time submissions at completion events); only the
    // batch-formation window remains open-stream.
    std::fprintf(stderr, "--window-ms is an open-stream feature; drop "
                         "--closed-loop\n");
    return 2;
  }
  const std::string runtime_name = Flag(argc, argv, "--runtime", "simulated");
  sched::RuntimeMode runtime_mode = sched::RuntimeMode::kSimulated;
  if (runtime_name == "threaded") {
    runtime_mode = sched::RuntimeMode::kThreaded;
  } else if (runtime_name != "simulated") {
    std::fprintf(stderr, "--runtime must be simulated or threaded\n");
    return 2;
  }
  // Shared physical residency pools: frames per slot pool; 0 falls back to
  // the legacy logical-ledger pricing (the PR 3 executor). Each slot's
  // pool eagerly allocates its frame table, so the ceiling must be a
  // count a process can actually hold (2^20 frames ~ 60 MB of frame
  // metadata per slot); resolution gains above the 4096 default are
  // already below 0.1% quantization.
  const long long pool_frames =
      std::atoll(Flag(argc, argv, "--pool-frames", "4096"));
  if (pool_frames < 0 || pool_frames > (1ll << 20)) {
    std::fprintf(stderr, "--pool-frames must be in 0..2^20\n");
    return 2;
  }
  // Tiered hierarchy: replacement policy of the slot pools and an optional
  // modeled OS page-cache tier below them. Clock is the pinned legacy
  // hierarchy and never runs an evicting OS tier.
  auto eviction =
      storage::ParseEvictionKind(Flag(argc, argv, "--eviction", "clock"));
  if (!eviction.ok()) {
    std::fprintf(stderr, "%s\n", eviction.status().ToString().c_str());
    return 2;
  }
  const long long os_frames =
      std::atoll(Flag(argc, argv, "--os-frames", "0"));
  if (os_frames < 0 || os_frames > (1ll << 20)) {
    std::fprintf(stderr, "--os-frames must be in 0..2^20\n");
    return 2;
  }
  if (os_frames > 0 && *eviction == storage::EvictionKind::kClock) {
    std::fprintf(stderr,
                 "--os-frames needs an evicting policy: choose --eviction "
                 "lru or promotional for the evicting OS tier\n");
    return 2;
  }

  sched::DriverOptions driver_opts;
  driver_opts.num_queries = static_cast<uint32_t>(queries);
  driver_opts.interactive_ranks = static_cast<uint32_t>(interactive_ranks);
  driver_opts.seed = static_cast<uint64_t>(
      std::atoll(Flag(argc, argv, "--seed", "3735928559")));
  driver_opts.zipf_exponent = std::atof(Flag(argc, argv, "--theta", "0.99"));
  if (driver_opts.zipf_exponent < 0) {
    std::fprintf(stderr, "--theta must be non-negative\n");
    return 2;
  }
  auto popularity = sched::ParsePopularity(Flag(argc, argv, "--dist", "zipf"));
  if (!popularity.ok()) {
    std::fprintf(stderr, "%s\n", popularity.status().ToString().c_str());
    return 2;
  }
  driver_opts.popularity = *popularity;

  std::vector<sched::Policy> policies;
  const std::string policy_name = Flag(argc, argv, "--policy", "all");
  if (policy_name == "all") {
    policies = {sched::Policy::kFcfs, sched::Policy::kSjf,
                sched::Policy::kRoundRobin};
  } else {
    auto policy = sched::ParsePolicy(policy_name);
    if (!policy.ok()) {
      std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
      return 2;
    }
    policies = {*policy};
  }

  // Observability sinks: --metrics-json writes the obs::MetricRegistry
  // snapshot (deterministic: two identical runs produce bit-identical
  // files), --trace-out writes a Chrome trace_event timeline
  // (chrome://tracing / Perfetto), --metrics-table prints the snapshot as
  // a table. All three snapshot ONE run, so they require a single
  // --policy.
  const char* metrics_json = Flag(argc, argv, "--metrics-json");
  const char* trace_out = Flag(argc, argv, "--trace-out");
  const bool metrics_table = HasFlag(argc, argv, "--metrics-table");
  const bool want_obs =
      metrics_json != nullptr || trace_out != nullptr || metrics_table;
  if (want_obs && policies.size() != 1) {
    std::fprintf(stderr,
                 "--metrics-json/--trace-out/--metrics-table snapshot one "
                 "run: pick a single --policy (fcfs|sjf|rr), not 'all'\n");
    return 2;
  }
  obs::MetricRegistry registry;
  obs::SlotTracer tracer;

  sched::DanaQueryExecutor::Options executor_opts;
  executor_opts.physical_pools = pool_frames > 0;
  if (pool_frames > 0) {
    executor_opts.pool_frames = static_cast<uint64_t>(pool_frames);
  }
  executor_opts.eviction = *eviction;
  executor_opts.os_frames = static_cast<uint64_t>(os_frames);
  executor_opts.metrics = want_obs ? &registry : nullptr;
  sched::DanaQueryExecutor executor(executor_opts);
  driver_opts.sessions = static_cast<uint32_t>(sessions);

  // Arrival rate (open stream only): explicit --rate, else calibrated to
  // ~80% utilization of the requested slots against the zipf-weighted mean
  // service time.
  const char* rate_flag = Flag(argc, argv, "--rate");
  if (rate_flag != nullptr) {
    driver_opts.arrival_rate_qps = std::atof(rate_flag);
    if (driver_opts.arrival_rate_qps <= 0) {
      std::fprintf(stderr, "--rate must be positive\n");
      return 2;
    }
  } else if (!closed_loop) {
    // Calibrate against each workload's steady state, not its cold
    // first-touch: dispatch every catalog entry twice back to back on one
    // slot and weight the second sample — immediately after its own run
    // the table is exactly as resident as the pool allows, which for
    // pool-sized tables is the warmest repeat they can ever achieve.
    double weighted = 0, total_weight = 0;
    for (size_t rank = 0; rank < catalog.size(); ++rank) {
      Result<sched::BatchCost> repeat =
          executor.Dispatch(sched::QueryBatch::Single(catalog[rank]));
      if (repeat.ok()) {
        repeat = executor.Dispatch(sched::QueryBatch::Single(catalog[rank]));
      }
      if (!repeat.ok()) {
        std::fprintf(stderr, "%s\n", repeat.status().ToString().c_str());
        return 1;
      }
      const double w = sched::PopularityWeight(
          driver_opts.popularity, rank, driver_opts.zipf_exponent);
      weighted += w * repeat->service.seconds();
      total_weight += w;
    }
    driver_opts.arrival_rate_qps =
        0.8 * static_cast<double>(slots) * total_weight / weighted;
  }

  sched::WorkloadDriver driver(catalog, driver_opts);
  std::vector<sched::QueryRequest> stream;
  std::vector<std::vector<std::string>> session_scripts;
  if (closed_loop) {
    auto scripts = driver.GenerateSessions();
    if (!scripts.ok()) {
      std::fprintf(stderr, "%s\n", scripts.status().ToString().c_str());
      return 1;
    }
    session_scripts = std::move(*scripts);
    std::printf("%u queries over %zu '%s' workloads, %s popularity "
                "(theta %.2f), closed loop: %d session(s), think %.0f ms, "
                "%d slot(s), batch %d, seed %llu\n\n",
                driver_opts.num_queries, catalog.size(), group.c_str(),
                sched::PopularityName(driver_opts.popularity),
                driver_opts.zipf_exponent, sessions, think_ms, slots,
                max_batch,
                static_cast<unsigned long long>(driver_opts.seed));
  } else {
    auto generated = driver.Generate();
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    stream = std::move(*generated);
    std::printf("%u queries over %zu '%s' workloads, %s popularity "
                "(theta %.2f), %.3f qps, %d slot(s), batch %d, seed %llu\n\n",
                driver_opts.num_queries, catalog.size(), group.c_str(),
                sched::PopularityName(driver_opts.popularity),
                driver_opts.zipf_exponent, driver_opts.arrival_rate_qps,
                slots, max_batch,
                static_cast<unsigned long long>(driver_opts.seed));
  }

  // Executors without a residency model report NaN warm-hit rates (their
  // static warm fractions say nothing about placement).
  auto warm_hits_cell = [](double rate) {
    return std::isnan(rate) ? std::string("-")
                            : TablePrinter::Fmt(rate * 100.0, 0) + "%";
  };
  auto warm_frac_cell = [](double fraction) {
    return std::isnan(fraction) ? std::string("-")
                                : TablePrinter::Fmt(fraction, 2);
  };
  const bool preemptive = quantum > 0 || window_ms > 0;
  // With physical pools on, the mean warm fraction is *measured* per-slot
  // pool residency at dispatch ("phys warm"); with --pool-frames 0 it is
  // the logical ledger's prediction. With an OS tier the column splits
  // into the pool share and the os-tier share (exclusive tiers).
  const bool tiered = os_frames > 0;
  const char* warm_column =
      tiered ? "pool/os warm" : (pool_frames > 0 ? "phys warm" : "mean warm");
  std::vector<std::string> columns = {
      "policy", "throughput (q/h)", "mean lat", "p50", "p95", "p99",
      "mean wait", "makespan", "mean batch", "warm hits", warm_column,
      "shared/private", "compile hits"};
  if (preemptive) {
    columns.insert(columns.begin() + 6, {"int p95", "batch p95", "preempts"});
  }
  TablePrinter table(columns);
  // The rate-calibration dispatches above already counted into the
  // registry; drop them so the snapshot covers exactly the scheduled run.
  registry.Clear();
  for (sched::Policy policy : policies) {
    // Every policy starts from the same cold machine: no slot inherits
    // residency from the previous policy's run (or the calibration pass).
    executor.ResetResidency();
    sched::Scheduler scheduler(
        {.slots = static_cast<uint32_t>(slots),
         .policy = policy,
         .max_batch = static_cast<uint32_t>(max_batch),
         .sjf_aging_weight = aging,
         .affinity_weight = affinity,
         .preemption_quantum_epochs = static_cast<uint32_t>(quantum),
         .context_switch_cost = dana::SimTime::Millis(ctx_ms),
         .batch_window = dana::SimTime::Millis(window_ms),
         .metrics = want_obs ? &registry : nullptr,
         .tracer = trace_out != nullptr ? &tracer : nullptr,
         .runtime_mode = runtime_mode},
        &executor);
    auto report =
        closed_loop
            ? scheduler.RunClosedLoop(session_scripts,
                                      dana::SimTime::Millis(think_ms))
            : scheduler.Run(stream);
    if (!report.ok()) {
      std::fprintf(stderr, "%s: %s\n", sched::PolicyName(policy),
                   report.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> row = {
        sched::PolicyName(policy),
        TablePrinter::Fmt(report->ThroughputQps() * 3600.0, 1),
        report->MeanLatency().ToString(),
        report->LatencyPercentile(50).ToString(),
        report->LatencyPercentile(95).ToString(),
        report->LatencyPercentile(99).ToString(),
        report->MeanWait().ToString(),
        report->makespan.ToString(),
        TablePrinter::Fmt(report->MeanBatchSize(), 2),
        warm_hits_cell(report->WarmHitRate()),
        tiered ? warm_frac_cell(report->MeanWarmFraction()) + "/" +
                     warm_frac_cell(report->MeanOsWarmFraction())
               : warm_frac_cell(report->MeanWarmFraction()),
        report->shared_service.ToString() + "/" +
            report->private_service.ToString(),
        std::to_string(report->compile_hits) + "/" +
            std::to_string(report->compile_hits + report->compile_misses)};
    if (preemptive) {
      const auto kInt = sched::QueryClass::kInteractive;
      const auto kBatch = sched::QueryClass::kBatch;
      row.insert(
          row.begin() + 6,
          {report->ClassQueries(kInt)
               ? report->ClassLatencyPercentile(kInt, 95).ToString()
               : "-",
           report->ClassQueries(kBatch)
               ? report->ClassLatencyPercentile(kBatch, 95).ToString()
               : "-",
           std::to_string(report->preemptions) + " (" +
               report->preemption_overhead.ToString() + ")"});
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\ncompiler ran %llu time(s); compile cache served %llu "
              "repeat(s)\n",
              static_cast<unsigned long long>(
                  executor.compile_cache().misses()),
              static_cast<unsigned long long>(executor.compile_cache().hits()));
  if (want_obs) {
    // Snapshot the executor's caches (compile cache + slot pools) next to
    // the run's sched.* metrics before serializing.
    executor.PublishGauges(&registry);
  }
  if (metrics_table) {
    std::printf("\n");
    registry.ToTable().Print();
  }
  if (metrics_json != nullptr) {
    Status st = registry.ToJson().WriteFile(metrics_json);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_json);
  }
  if (trace_out != nullptr) {
    Status st = tracer.WriteFile(trace_out);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("trace written to %s (%zu events; load in chrome://tracing "
                "or https://ui.perfetto.dev)\n",
                trace_out, tracer.event_count());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    PrintHelp(stdout);
    return 0;
  }
  if (cmd == "workloads") return CmdWorkloads();
  if (cmd == "compile") return CmdCompile(argc, argv);
  if (cmd == "inspect") return CmdInspect(argc, argv);
  if (cmd == "strider-asm") return CmdStriderAsm(argc, argv);
  if (cmd == "strider-walk") return CmdStriderWalk(argc, argv);
  if (cmd == "sched") return CmdSched(argc, argv);
  std::fprintf(stderr, "dana: unknown verb '%s'\n\n", cmd.c_str());
  return Usage();
}
